"""Tests for the data stream abstraction and the anytime stream driver."""

import numpy as np
import pytest

from repro.core import AnytimeBayesClassifier, BayesTreeConfig
from repro.data import make_blobs
from repro.index import TreeParameters
from repro.stream import ConstantArrival, DataStream, PoissonArrival, run_anytime_stream


def small_config():
    return BayesTreeConfig(
        tree=TreeParameters(max_fanout=4, min_fanout=2, leaf_capacity=4, leaf_min=2)
    )


BLOB_CENTERS = np.array([[0.0, 0.0], [9.0, 9.0]])


def blob_dataset(seed=0, per_class=60):
    return make_blobs(
        n_classes=2, per_class=per_class, n_features=2, random_state=seed, centers=BLOB_CENTERS
    )


def test_stream_yields_every_object_exactly_once():
    dataset = blob_dataset()
    stream = DataStream(dataset, random_state=0)
    items = stream.items()
    assert len(items) == dataset.size
    assert sorted(item.index for item in items) == list(range(dataset.size))


def test_stream_arrival_times_are_increasing():
    dataset = blob_dataset(seed=1)
    stream = DataStream(dataset, arrival=PoissonArrival(rate=2.0), random_state=1)
    items = stream.items()
    times = [item.arrival_time for item in items]
    assert all(b >= a for a, b in zip(times, times[1:]))


def test_constant_stream_has_constant_budgets():
    dataset = blob_dataset(seed=2)
    stream = DataStream(dataset, arrival=ConstantArrival(gap=1.0), nodes_per_time_unit=7, random_state=2)
    budgets = {item.budget for item in stream.items(20)}
    assert budgets == {7}


def test_poisson_stream_has_varying_budgets():
    dataset = blob_dataset(seed=3)
    stream = DataStream(dataset, arrival=PoissonArrival(rate=1.0), nodes_per_time_unit=10, random_state=3)
    budgets = [item.budget for item in stream.items(100)]
    assert len(set(budgets)) > 3


def test_stream_is_reproducible_given_seed():
    dataset = blob_dataset(seed=4)
    a = DataStream(dataset, arrival=PoissonArrival(rate=1.0), random_state=9).items(10)
    b = DataStream(dataset, arrival=PoissonArrival(rate=1.0), random_state=9).items(10)
    assert [i.index for i in a] == [i.index for i in b]
    assert [i.budget for i in a] == [i.budget for i in b]


def test_max_budget_is_respected():
    dataset = blob_dataset(seed=5)
    stream = DataStream(
        dataset, arrival=PoissonArrival(rate=0.1), nodes_per_time_unit=100, max_budget=15, random_state=5
    )
    assert all(item.budget <= 15 for item in stream.items(50))


def test_query_batches_preserve_order_and_respect_limit():
    dataset = blob_dataset()
    stream = DataStream(dataset, random_state=0)
    expected = np.stack([item.features for item in stream.items()])
    blocks = list(stream.query_batches(16))
    assert [block.shape[0] for block in blocks[:-1]] == [16] * (len(blocks) - 1)
    assert 1 <= blocks[-1].shape[0] <= 16
    np.testing.assert_array_equal(np.vstack(blocks), expected)
    limited = list(stream.query_batches(16, limit=21))
    assert [block.shape[0] for block in limited] == [16, 5]
    np.testing.assert_array_equal(np.vstack(limited), expected[:21])
    with pytest.raises(ValueError, match="batch_size"):
        next(stream.query_batches(0))


def test_run_anytime_stream_classifies_and_reports_accuracy():
    dataset = blob_dataset(seed=6)
    train = dataset.features[:80], dataset.labels[:80]
    classifier = AnytimeBayesClassifier(config=small_config()).fit(*train)
    test_dataset = blob_dataset(seed=7, per_class=20)
    stream = DataStream(test_dataset, arrival=ConstantArrival(gap=1.0), nodes_per_time_unit=10, random_state=6)
    result = run_anytime_stream(classifier, stream)
    assert len(result.steps) == test_dataset.size
    assert result.accuracy > 0.9
    assert result.mean_budget == pytest.approx(10.0)
    assert 0 <= result.mean_nodes_read <= 10.0


def test_run_anytime_stream_with_limit_and_budget_buckets():
    dataset = blob_dataset(seed=8)
    classifier = AnytimeBayesClassifier(config=small_config()).fit(dataset.features, dataset.labels)
    stream = DataStream(dataset, arrival=PoissonArrival(rate=1.0), nodes_per_time_unit=5, random_state=8)
    result = run_anytime_stream(classifier, stream, limit=30)
    assert len(result.steps) == 30
    buckets = result.accuracy_by_budget()
    assert all(0.0 <= value <= 1.0 for value in buckets.values())


def test_run_anytime_stream_online_learning_grows_the_model():
    dataset = blob_dataset(seed=9, per_class=30)
    # Start with a tiny training set and learn online from the stream.
    classifier = AnytimeBayesClassifier(config=small_config()).fit(
        dataset.features[:10], dataset.labels[:10]
    )
    before = sum(tree.n_objects for tree in classifier.trees.values())
    stream = DataStream(dataset, arrival=ConstantArrival(gap=1.0), nodes_per_time_unit=5, random_state=9)
    run_anytime_stream(classifier, stream, limit=20, online_learning=True)
    after = sum(tree.n_objects for tree in classifier.trees.values())
    assert after == before + 20


def test_empty_stream_run_result_statistics_are_nan():
    from repro.stream.anytime import StreamRunResult

    result = StreamRunResult()
    assert np.isnan(result.accuracy)
    assert np.isnan(result.mean_budget)
    assert np.isnan(result.mean_nodes_read)
