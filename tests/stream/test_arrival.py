"""Tests for stream arrival processes and budget conversion."""

import numpy as np
import pytest

from repro.stream import ConstantArrival, PoissonArrival, gaps_to_node_budgets


def test_constant_arrival_produces_identical_gaps():
    rng = np.random.default_rng(0)
    gaps = ConstantArrival(gap=2.5).gaps(10, rng)
    np.testing.assert_allclose(gaps, 2.5)


def test_constant_arrival_validates_gap_and_count():
    with pytest.raises(ValueError):
        ConstantArrival(gap=0.0)
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        ConstantArrival(gap=1.0).gaps(-1, rng)


def test_poisson_arrival_mean_matches_rate():
    rng = np.random.default_rng(1)
    gaps = PoissonArrival(rate=4.0).gaps(20_000, rng)
    assert gaps.mean() == pytest.approx(0.25, rel=0.05)
    assert np.all(gaps >= 0)


def test_poisson_arrival_is_varying():
    rng = np.random.default_rng(2)
    gaps = PoissonArrival(rate=1.0).gaps(100, rng)
    assert gaps.std() > 0


def test_poisson_arrival_validates_rate():
    with pytest.raises(ValueError):
        PoissonArrival(rate=-1.0)


def test_gaps_to_node_budgets_scaling_and_cap():
    gaps = np.array([0.0, 0.5, 1.0, 3.0])
    budgets = gaps_to_node_budgets(gaps, nodes_per_time_unit=10, max_nodes=20)
    np.testing.assert_array_equal(budgets, [0, 5, 10, 20])


def test_gaps_to_node_budgets_validates_speed():
    with pytest.raises(ValueError):
        gaps_to_node_budgets(np.array([1.0]), nodes_per_time_unit=0)


def test_budgets_are_never_negative():
    budgets = gaps_to_node_budgets(np.array([-1.0, 0.1]), nodes_per_time_unit=10)
    assert np.all(budgets >= 0)
