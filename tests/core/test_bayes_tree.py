"""Tests for the Bayes tree wrapper (training, bandwidths, densities)."""

import numpy as np
import pytest

from repro.core import BayesTree, BayesTreeConfig
from repro.index import TreeParameters
from repro.stats import silverman_bandwidth


def small_config(**kwargs):
    return BayesTreeConfig(
        tree=TreeParameters(max_fanout=4, min_fanout=2, leaf_capacity=4, leaf_min=2), **kwargs
    )


def test_config_validation():
    with pytest.raises(ValueError):
        BayesTreeConfig(kernel="tophat")
    with pytest.raises(ValueError):
        BayesTreeConfig(bandwidth_scale=0.0)


def test_fit_stores_all_points_and_sets_bandwidth():
    rng = np.random.default_rng(0)
    points = rng.normal(size=(100, 3))
    tree = BayesTree(dimension=3, config=small_config()).fit(points)
    assert tree.n_objects == 100
    expected = silverman_bandwidth(points)
    np.testing.assert_allclose(tree.bandwidth, expected)
    # Leaf entries carry no stamped copies: the shared, epoch-tagged bandwidth
    # is resolved at evaluation time instead (O(d) updates per insert).
    for entry in tree.index.iter_leaf_entries():
        assert entry.bandwidth is None
        np.testing.assert_allclose(entry.resolve_bandwidth(tree.bandwidth), expected)
    tree.validate()


def test_fit_rejects_wrong_dimension():
    tree = BayesTree(dimension=3)
    with pytest.raises(ValueError):
        tree.fit(np.zeros((10, 2)))


def test_empty_tree_has_no_bandwidth_and_rejects_queries():
    tree = BayesTree(dimension=2)
    assert tree.bandwidth is None
    with pytest.raises(ValueError):
        tree.frontier(np.zeros(2))


def test_single_point_gets_unit_bandwidth():
    tree = BayesTree(dimension=2, config=small_config())
    tree.insert([1.0, 2.0])
    np.testing.assert_allclose(tree.bandwidth, [1.0, 1.0])
    assert tree.density([1.0, 2.0]) > 0


def test_incremental_insert_updates_bandwidth_and_model():
    rng = np.random.default_rng(1)
    points = rng.normal(size=(50, 2))
    tree = BayesTree(dimension=2, config=small_config()).fit(points[:25])
    bandwidth_before = tree.bandwidth.copy()
    for point in points[25:]:
        tree.insert(point)
    assert tree.n_objects == 50
    assert not np.allclose(tree.bandwidth, bandwidth_before)
    np.testing.assert_allclose(tree.bandwidth, silverman_bandwidth(points))


def test_bandwidth_scale_multiplies_silverman_rule():
    rng = np.random.default_rng(2)
    points = rng.normal(size=(60, 2))
    plain = BayesTree(dimension=2, config=small_config()).fit(points)
    scaled = BayesTree(dimension=2, config=small_config(bandwidth_scale=2.0)).fit(points)
    np.testing.assert_allclose(scaled.bandwidth, 2.0 * plain.bandwidth)


def test_density_with_zero_nodes_uses_root_model():
    rng = np.random.default_rng(3)
    points = rng.normal(size=(80, 2))
    tree = BayesTree(dimension=2, config=small_config()).fit(points)
    query = points[0]
    frontier = tree.frontier(query)
    assert tree.density(query, nodes=0) == pytest.approx(frontier.density)


def test_density_integrates_to_one_full_model_1d():
    rng = np.random.default_rng(4)
    points = rng.normal(size=(40, 1))
    tree = BayesTree(dimension=1, config=small_config()).fit(points)
    xs = np.linspace(-6, 6, 2001)
    values = np.array([tree.full_model_density(np.array([x])) for x in xs])
    assert np.trapezoid(values, xs) == pytest.approx(1.0, abs=5e-3)


def test_density_integrates_to_one_root_model_1d():
    rng = np.random.default_rng(5)
    points = rng.normal(size=(40, 1))
    tree = BayesTree(dimension=1, config=small_config()).fit(points)
    xs = np.linspace(-8, 8, 2001)
    values = np.array([tree.density(np.array([x]), nodes=0) for x in xs])
    assert np.trapezoid(values, xs) == pytest.approx(1.0, abs=5e-3)


def test_epanechnikov_kernel_configuration():
    rng = np.random.default_rng(6)
    points = rng.normal(size=(50, 2))
    tree = BayesTree(dimension=2, config=small_config(kernel="epanechnikov")).fit(points)
    assert all(entry.kernel == "epanechnikov" for entry in tree.index.iter_leaf_entries())
    assert tree.full_model_density(points[0]) > 0.0
    assert tree.full_model_density(np.full(2, 50.0)) == 0.0


def test_level_model_density_validates_level():
    rng = np.random.default_rng(7)
    tree = BayesTree(dimension=2, config=small_config()).fit(rng.normal(size=(60, 2)))
    with pytest.raises(ValueError):
        tree.level_model_density(np.zeros(2), tree.root.level + 1)
    with pytest.raises(ValueError):
        tree.level_model_density(np.zeros(2), -1)


def test_adopt_index_requires_matching_dimension():
    from repro.index import RStarTree

    tree = BayesTree(dimension=3)
    with pytest.raises(ValueError):
        tree.adopt_index(RStarTree(dimension=2))


def test_query_dimension_checked():
    rng = np.random.default_rng(8)
    tree = BayesTree(dimension=2, config=small_config()).fit(rng.normal(size=(30, 2)))
    with pytest.raises(ValueError):
        tree.frontier(np.zeros(3))
