"""Numerical equivalence of the vectorised log-space query engine.

The vectorised engine (batched ``log_gaussian_pdf`` + log-sum-exp over the
packed :class:`FrontierArrays`) must reproduce the scalar linear-space
reference path (`pdq_scalar`, one ``math.exp`` per entry) to floating-point
round-off, and the batch classification drivers must yield exactly the same
predictions as their per-query counterparts.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AnytimeBayesClassifier,
    BayesTree,
    BayesTreeConfig,
    log_pdq,
    make_descent_strategy,
    pdq,
    pdq_scalar,
)
from repro.core.frontier import FrontierArrays
from repro.index import TreeParameters
from repro.stats.gaussian import log_gaussian_pdf, log_gaussian_pdf_batch, logsumexp


def small_config(**kwargs):
    return BayesTreeConfig(
        tree=TreeParameters(max_fanout=4, min_fanout=2, leaf_capacity=4, leaf_min=2), **kwargs
    )


def random_tree(rng, count=60, dim=3, **config_kwargs):
    points = np.vstack(
        [
            rng.normal(loc=0.0, scale=1.0, size=(count // 2, dim)),
            rng.normal(loc=4.0, scale=1.5, size=(count - count // 2, dim)),
        ]
    )
    return BayesTree(dimension=dim, config=small_config(**config_kwargs)).fit(points), points


class TestBatchedLogGaussian:
    def test_matches_scalar_log_pdf(self):
        rng = np.random.default_rng(0)
        means = rng.normal(size=(25, 4))
        variances = rng.uniform(0.1, 3.0, size=(25, 4))
        x = rng.normal(size=4)
        batched = log_gaussian_pdf_batch(x, means, variances)
        for j in range(25):
            assert batched[j] == pytest.approx(
                log_gaussian_pdf(x, means[j], variances[j]), rel=1e-12, abs=1e-12
            )

    def test_query_batch_shape_and_values(self):
        rng = np.random.default_rng(1)
        means = rng.normal(size=(7, 3))
        variances = rng.uniform(0.2, 2.0, size=(7, 3))
        queries = rng.normal(size=(11, 3))
        out = log_gaussian_pdf_batch(queries, means, variances)
        assert out.shape == (11, 7)
        for i in (0, 5, 10):
            np.testing.assert_allclose(
                out[i], log_gaussian_pdf_batch(queries[i], means, variances), rtol=1e-12
            )

    def test_chunked_path_matches_unchunked(self, monkeypatch):
        import repro.stats.gaussian as gaussian_module

        rng = np.random.default_rng(2)
        means = rng.normal(size=(9, 3))
        variances = rng.uniform(0.2, 2.0, size=(9, 3))
        queries = rng.normal(size=(13, 3))
        full = log_gaussian_pdf_batch(queries, means, variances)
        monkeypatch.setattr(gaussian_module, "_BATCH_CHUNK_SCALARS", 30)
        chunked = gaussian_module.log_gaussian_pdf_batch(queries, means, variances)
        np.testing.assert_array_equal(full, chunked)

    def test_empty_component_set(self):
        out = log_gaussian_pdf_batch(np.zeros(2), np.empty((0, 2)), np.empty((0, 2)))
        assert out.shape == (0,)


class TestLogSumExp:
    def test_matches_naive_sum(self):
        rng = np.random.default_rng(3)
        a = rng.normal(size=50)
        assert logsumexp(a) == pytest.approx(math.log(np.sum(np.exp(a))), rel=1e-12)

    def test_extreme_values_do_not_overflow(self):
        a = np.array([-1e6, -1e6 + 1.0])
        assert logsumexp(a) == pytest.approx(-1e6 + 1.0 + math.log1p(math.exp(-1.0)))

    def test_all_minus_inf_and_empty(self):
        assert logsumexp(np.array([-np.inf, -np.inf])) == -np.inf
        assert logsumexp(np.array([])) == -np.inf

    def test_axis_reduction(self):
        rng = np.random.default_rng(4)
        a = rng.normal(size=(5, 8))
        out = logsumexp(a, axis=1)
        assert out.shape == (5,)
        for i in range(5):
            assert out[i] == pytest.approx(logsumexp(a[i]), rel=1e-12)


@settings(deadline=None, max_examples=15)
@given(
    seed=st.integers(0, 10_000),
    strategy_name=st.sampled_from(["bft", "dft", "glo", "glo-geometric"]),
    steps=st.integers(0, 12),
)
def test_vectorized_pdq_matches_scalar_on_random_frontiers(seed, strategy_name, steps):
    """Property: vectorised pdq == scalar pdq on arbitrary refinement states."""
    rng = np.random.default_rng(seed)
    tree, points = random_tree(rng, count=40, dim=3)
    query = rng.normal(loc=2.0, scale=3.0, size=3)
    frontier = tree.frontier(query)
    strategy = make_descent_strategy(strategy_name)
    for _ in range(steps):
        if frontier.refine(strategy) is None:
            break
    entries = [item.entry for item in frontier.items]
    inflation = tree._variance_inflation()
    vectorized = pdq(
        query, entries, variance_inflation=inflation, leaf_bandwidth=tree.bandwidth
    )
    scalar = pdq_scalar(
        query, entries, variance_inflation=inflation, leaf_bandwidth=tree.bandwidth
    )
    assert vectorized == pytest.approx(scalar, rel=1e-9, abs=1e-300)
    # The incrementally maintained frontier density agrees with both.
    assert frontier.density == pytest.approx(scalar, rel=1e-9, abs=1e-300)
    # And the log-space value is consistent with the linear one.
    assert log_pdq(
        query, entries, variance_inflation=inflation, leaf_bandwidth=tree.bandwidth
    ) == pytest.approx(math.log(scalar) if scalar > 0 else -math.inf, rel=1e-9)


@settings(deadline=None, max_examples=10)
@given(seed=st.integers(0, 10_000))
def test_epanechnikov_vectorized_pdq_matches_scalar(seed):
    rng = np.random.default_rng(seed)
    tree, points = random_tree(rng, count=30, dim=2, kernel="epanechnikov")
    query = points[int(rng.integers(0, len(points)))] + rng.normal(scale=0.2, size=2)
    frontier = tree.frontier(query)
    frontier.refine_fully(make_descent_strategy("glo"))
    entries = [item.entry for item in frontier.items]
    vectorized = pdq(query, entries, leaf_bandwidth=tree.bandwidth)
    scalar = pdq_scalar(query, entries, leaf_bandwidth=tree.bandwidth)
    assert vectorized == pytest.approx(scalar, rel=1e-9, abs=1e-300)


class TestFrontierArrays:
    def test_swap_remove_keeps_rows_packed(self):
        arrays = FrontierArrays(dimension=2, capacity=2)
        means = np.arange(10, dtype=float).reshape(5, 2)
        scales = np.ones((5, 2))
        kinds = np.zeros(5, dtype=np.int8)
        log_weights = np.log(np.full(5, 0.2))
        log_densities = np.arange(5, dtype=float)
        arrays.append_batch(means, scales, kinds, log_weights, log_densities)
        assert arrays.size == 5
        moved = arrays.swap_remove(1)
        assert moved == 4
        assert arrays.size == 4
        np.testing.assert_array_equal(arrays.means[1], means[4])
        assert arrays.swap_remove(3) is None
        assert arrays.size == 3

    def test_log_density_is_logsumexp_of_contributions(self):
        arrays = FrontierArrays(dimension=1)
        arrays.append_batch(
            np.zeros((3, 1)),
            np.ones((3, 1)),
            np.zeros(3, dtype=np.int8),
            np.log(np.full(3, 1 / 3)),
            np.array([-1.0, -2.0, -3.0]),
        )
        expected = logsumexp(np.log(1 / 3) + np.array([-1.0, -2.0, -3.0]))
        assert arrays.log_density() == pytest.approx(expected, rel=1e-12)


class TestLinearViewSaturation:
    """Linear-space views saturate instead of raising on extreme log values."""

    def test_safe_exp_bounds(self):
        from repro.stats.gaussian import safe_exp

        assert safe_exp(-np.inf) == 0.0
        assert safe_exp(0.0) == 1.0
        assert safe_exp(1000.0) == math.inf

    def test_tiny_bandwidth_high_dim_does_not_crash(self):
        """Log densities above ~709 (tiny Silverman bandwidths) used to raise
        OverflowError through the linear-space posterior views."""
        rng = np.random.default_rng(20)
        dim = 80
        points = np.vstack(
            [
                rng.normal(loc=0.0, scale=1e-6, size=(20, dim)),
                rng.normal(loc=1.0, scale=1e-6, size=(20, dim)),
            ]
        )
        labels = [0] * 20 + [1] * 20
        classifier = AnytimeBayesClassifier(config=small_config()).fit(points, labels)
        result = classifier.classify_anytime(points[0], max_nodes=3)
        assert result.final_prediction == 0
        assert all(value >= 0 for value in result.posteriors[-1].values())
        assert classifier.predict_batch(points[:2]) == [0, 0]
        # The linear-space tree density saturates to inf instead of raising.
        tree_density = classifier.trees[0].density(points[0], nodes=0)
        assert tree_density == math.inf or tree_density > 0


class TestBatchClassificationEquivalence:
    @staticmethod
    def multiclass_stream(seed=0, per_class=40, dim=4, n_classes=4):
        rng = np.random.default_rng(seed)
        centers = rng.uniform(-6.0, 6.0, size=(n_classes, dim))
        points, labels = [], []
        for label, center in enumerate(centers):
            points.append(rng.normal(loc=center, scale=1.0, size=(per_class, dim)))
            labels.extend([label] * per_class)
        order = rng.permutation(per_class * n_classes)
        return np.vstack(points)[order], np.array(labels)[order]

    def test_budgeted_batch_equals_sequential(self):
        points, labels = self.multiclass_stream(seed=5)
        classifier = AnytimeBayesClassifier(config=small_config())
        classifier.fit(points[:120], labels[:120])
        queries = points[120:150]
        sequential = [classifier.classify_anytime(q, max_nodes=15) for q in queries]
        batched = classifier.classify_anytime_batch(queries, max_nodes=15)
        for seq, bat in zip(sequential, batched):
            assert seq.predictions == bat.predictions
            assert seq.nodes_read == bat.nodes_read
            for seq_post, bat_post in zip(seq.log_posteriors, bat.log_posteriors):
                for label in seq_post:
                    assert bat_post[label] == pytest.approx(seq_post[label], rel=1e-9)

    def test_fully_refined_batch_equals_per_query_predictions(self):
        """Synthetic multi-class stream: flat batch path == per-query descent."""
        points, labels = self.multiclass_stream(seed=6, n_classes=5)
        classifier = AnytimeBayesClassifier(config=small_config())
        classifier.fit(points[:150], labels[:150])
        queries = points[150:]
        per_query = [classifier.predict(q) for q in queries]
        batched = classifier.predict_batch(queries)
        assert batched == per_query

    def test_stream_trained_batch_predictions(self):
        """partial_fit-trained classifier serves identical batch predictions."""
        points, labels = self.multiclass_stream(seed=7, per_class=25, n_classes=3)
        classifier = AnytimeBayesClassifier(config=small_config())
        for point, label in zip(points[:60], labels[:60]):
            classifier.partial_fit(point, label)
        queries = points[60:80]
        assert classifier.predict_batch(queries) == [classifier.predict(q) for q in queries]
        assert sum(classifier.priors.values()) == pytest.approx(1.0)

    def test_budgeted_predict_batch_chunking_preserves_results(self, monkeypatch):
        import repro.core.classifier as classifier_module

        points, labels = self.multiclass_stream(seed=9, per_class=30, n_classes=3)
        classifier = AnytimeBayesClassifier(config=small_config())
        classifier.fit(points[:60], labels[:60])
        queries = points[60:80]
        unchunked = classifier.predict_batch(queries, node_budget=10)
        monkeypatch.setattr(classifier_module, "BATCH_CHUNK_QUERIES", 7)
        chunked = classifier.predict_batch(queries, node_budget=10)
        assert chunked == unchunked

    def test_record_history_false_skips_trace_but_keeps_final(self):
        points, labels = self.multiclass_stream(seed=10, per_class=30, n_classes=3)
        classifier = AnytimeBayesClassifier(config=small_config())
        classifier.fit(points[:60], labels[:60])
        queries = points[60:70]
        full = classifier.classify_anytime_batch(queries, max_nodes=10)
        lite = classifier.classify_anytime_batch(queries, max_nodes=10, record_history=False)
        for f, l in zip(full, lite):
            assert l.final_prediction == f.final_prediction
            assert l.nodes_read == f.nodes_read
            assert len(l.predictions) == 1
            # Asking for intermediate history that was never recorded is loud.
            with pytest.raises(ValueError):
                l.prediction_after(0)

    def test_epanechnikov_batch_rejects_dimension_mismatch(self):
        from repro.stats.kernel import log_epanechnikov_pdf_batch

        with pytest.raises(ValueError):
            log_epanechnikov_pdf_batch(
                np.ones((2, 3)), np.zeros((4, 1)), np.ones((4, 1))
            )

    def test_batch_validates_inputs(self):
        points, labels = self.multiclass_stream(seed=8)
        classifier = AnytimeBayesClassifier(config=small_config())
        with pytest.raises(ValueError):
            classifier.classify_anytime_batch(points[:3], max_nodes=5)
        classifier.fit(points[:100], labels[:100])
        with pytest.raises(ValueError):
            classifier.classify_anytime_batch(points[0], max_nodes=5)
        with pytest.raises(ValueError):
            classifier.classify_anytime_batch(points[:3], max_nodes=-1)
        with pytest.raises(ValueError):
            classifier.predict_batch(points[0])


class TestBayesTreeBatchDensity:
    def test_log_density_batch_matches_full_refinement(self):
        rng = np.random.default_rng(9)
        tree, points = random_tree(rng, count=50, dim=3)
        queries = points[:8] + rng.normal(scale=0.3, size=(8, 3))
        batched = tree.log_density_batch(queries)
        assert batched.shape == (8,)
        for i, query in enumerate(queries):
            assert math.exp(batched[i]) == pytest.approx(
                tree.full_model_density(query), rel=1e-9
            )

    def test_leaf_cache_invalidated_by_insert(self):
        rng = np.random.default_rng(10)
        tree, points = random_tree(rng, count=30, dim=2)
        query = points[0]
        before = tree.log_density_batch(query[None, :])[0]
        tree.insert(rng.normal(size=2))
        after = tree.log_density_batch(query[None, :])[0]
        assert after != before  # new kernel and new bandwidth change the model
        assert math.exp(after) == pytest.approx(tree.full_model_density(query), rel=1e-9)
