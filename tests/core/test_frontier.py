"""Tests for frontiers and probability density queries (paper Def. 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BayesTree, BayesTreeConfig, make_descent_strategy
from repro.core.frontier import pdq
from repro.index import TreeParameters


def small_config():
    return BayesTreeConfig(
        tree=TreeParameters(max_fanout=4, min_fanout=2, leaf_capacity=4, leaf_min=2)
    )


def fitted_tree(seed=0, count=120, dim=2):
    rng = np.random.default_rng(seed)
    points = np.vstack(
        [
            rng.normal(loc=0.0, scale=1.0, size=(count // 2, dim)),
            rng.normal(loc=6.0, scale=1.0, size=(count - count // 2, dim)),
        ]
    )
    return BayesTree(dimension=dim, config=small_config()).fit(points), points


def test_frontier_starts_with_root_entries():
    tree, _ = fitted_tree()
    frontier = tree.frontier(np.zeros(2))
    assert len(frontier) == len(tree.root.entries)
    assert frontier.nodes_read == 0


def test_frontier_density_positive_near_data_and_tiny_far_away():
    tree, points = fitted_tree()
    near = tree.frontier(points[0]).density
    far = tree.frontier(np.full(2, 100.0)).density
    assert near > far
    assert far >= 0.0


def test_refine_replaces_entry_with_children():
    tree, _ = fitted_tree()
    frontier = tree.frontier(np.zeros(2))
    before = len(frontier)
    strategy = make_descent_strategy("bft")
    refined = frontier.refine(strategy)
    assert refined is not None
    assert frontier.nodes_read == 1
    # The refined entry is replaced by at least min_fanout children.
    assert len(frontier) >= before + 1


def test_incremental_density_matches_recomputation():
    tree, points = fitted_tree(seed=1)
    strategy = make_descent_strategy("glo")
    frontier = tree.frontier(points[3])
    for _ in range(30):
        if frontier.refine(strategy) is None:
            break
        assert frontier.density == pytest.approx(frontier.density_from_scratch(), rel=1e-9)


def test_full_refinement_matches_kernel_density_estimate():
    tree, points = fitted_tree(seed=2, count=60)
    query = points[10] + 0.1
    frontier = tree.frontier(query)
    frontier.refine_fully(make_descent_strategy("bft"))
    assert frontier.is_fully_refined
    # Full refinement = kernel density estimate over all training points
    # (leaf entries resolve the tree-shared bandwidth at evaluation time).
    expected = pdq(
        query, list(tree.index.iter_leaf_entries()), leaf_bandwidth=tree.bandwidth
    )
    assert frontier.density == pytest.approx(expected, rel=1e-9)


def test_each_tree_level_is_a_complete_model():
    tree, points = fitted_tree(seed=3, count=100)
    query = points[0]
    for level in range(tree.root.level + 1):
        density = tree.level_model_density(query, level)
        assert density >= 0.0
    # The leaf level model equals the full kernel density estimate.
    assert tree.level_model_density(query, 0) == pytest.approx(
        tree.full_model_density(query), rel=1e-9
    )


def test_represented_objects_invariant_under_refinement():
    tree, points = fitted_tree(seed=4)
    frontier = tree.frontier(points[0])
    total = frontier.represented_objects()
    strategy = make_descent_strategy("dft")
    for _ in range(20):
        if frontier.refine(strategy) is None:
            break
        assert frontier.represented_objects() == pytest.approx(total)


def test_refine_returns_none_when_fully_refined():
    rng = np.random.default_rng(5)
    tree = BayesTree(dimension=2, config=small_config()).fit(rng.normal(size=(3, 2)))
    frontier = tree.frontier(np.zeros(2))
    strategy = make_descent_strategy("bft")
    frontier.refine_fully(strategy)
    assert frontier.refine(strategy) is None


def test_refine_item_rejects_leaf_entries():
    tree, points = fitted_tree(seed=6, count=20)
    frontier = tree.frontier(points[0])
    frontier.refine_fully(make_descent_strategy("bft"))
    leaf_item = frontier.items[0]
    with pytest.raises(ValueError):
        frontier.refine_item(leaf_item)


def test_refine_item_rejects_foreign_items():
    tree, points = fitted_tree(seed=7, count=60)
    frontier_a = tree.frontier(points[0])
    frontier_b = tree.frontier(points[1])
    foreign = frontier_b.refinable_items()[0]
    frontier_b.refine_item(foreign)
    with pytest.raises(ValueError):
        frontier_a.refine_item(foreign)


def test_pdq_empty_entry_set_is_zero():
    assert pdq(np.zeros(2), []) == 0.0


def test_pdq_weights_entries_by_object_count():
    tree, points = fitted_tree(seed=8, count=40)
    query = points[0]
    entries = list(tree.root.entries)
    manual = sum(
        entry.n_objects / sum(e.n_objects for e in entries) * entry.density(query)
        for entry in entries
    )
    assert pdq(query, entries) == pytest.approx(manual)


def test_max_nodes_limits_refinement():
    tree, points = fitted_tree(seed=9)
    frontier = tree.frontier(points[0])
    reads = frontier.refine_fully(make_descent_strategy("glo"), max_nodes=5)
    assert reads <= 5
    assert frontier.nodes_read == reads


@settings(deadline=None, max_examples=10)
@given(seed=st.integers(0, 1000), strategy_name=st.sampled_from(["bft", "dft", "glo", "glo-geometric"]))
def test_density_invariants_for_all_strategies(seed, strategy_name):
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(50, 2))
    tree = BayesTree(dimension=2, config=small_config()).fit(points)
    query = rng.normal(size=2)
    frontier = tree.frontier(query)
    strategy = make_descent_strategy(strategy_name)
    densities = [frontier.density]
    while frontier.refine(strategy) is not None:
        densities.append(frontier.density)
    # Density stays non-negative and finite, and full refinement is reached.
    assert all(np.isfinite(d) and d >= 0 for d in densities)
    assert frontier.is_fully_refined
    assert densities[-1] == pytest.approx(
        pdq(query, list(tree.index.iter_leaf_entries()), leaf_bandwidth=tree.bandwidth),
        rel=1e-9,
    )
