"""Online-learning equivalence: streamed ``partial_fit`` == training from scratch.

The tentpole guarantee of the incremental maintenance path (DESIGN.md,
incremental maintenance): after N ``partial_fit`` calls the classifier's
bandwidths, packed leaf arrays, priors and predictions must match a classifier
trained from scratch on the same data (tolerance 1e-9 — in practice the two
paths execute the identical per-point updates and agree bitwise).
"""

import numpy as np
import pytest

from repro.core import AnytimeBayesClassifier, BayesTree, BayesTreeConfig
from repro.data import make_blobs
from repro.index import TreeParameters
from repro.stats import silverman_bandwidth


def small_config(**kwargs):
    return BayesTreeConfig(
        tree=TreeParameters(max_fanout=4, min_fanout=2, leaf_capacity=4, leaf_min=2), **kwargs
    )


def interleaved_data(seed=0, count=120, n_features=3, n_classes=3):
    dataset = make_blobs(
        n_classes=n_classes, per_class=count // n_classes, n_features=n_features, random_state=seed
    )
    order = np.random.default_rng(seed).permutation(dataset.size)
    return dataset.features[order], [dataset.labels[i] for i in order]


def streamed_classifier(features, labels, **kwargs):
    classifier = AnytimeBayesClassifier(**kwargs)
    for point, label in zip(features, labels):
        classifier.partial_fit(point, label)
    return classifier


@pytest.mark.parametrize("kernel", ["gaussian", "epanechnikov"])
def test_partial_fit_matches_fit_from_scratch(kernel):
    features, labels = interleaved_data(seed=1)
    config = small_config(kernel=kernel)
    scratch = AnytimeBayesClassifier(config=config).fit(features, labels)
    streamed = streamed_classifier(features, labels, config=config)

    assert set(streamed.trees) == set(scratch.trees)
    for label, scratch_tree in scratch.trees.items():
        streamed_tree = streamed.trees[label]
        assert streamed_tree.n_objects == scratch_tree.n_objects
        np.testing.assert_allclose(
            streamed_tree.bandwidth, scratch_tree.bandwidth, rtol=1e-9, atol=0
        )
        for got, expected in zip(streamed_tree.leaf_arrays(), scratch_tree.leaf_arrays()):
            np.testing.assert_allclose(got, expected, rtol=1e-9, atol=0)
    assert streamed.priors == pytest.approx(scratch.priors, rel=1e-9)

    rng = np.random.default_rng(2)
    queries = rng.normal(scale=4.0, size=(40, features.shape[1]))
    assert streamed.predict_batch(queries) == scratch.predict_batch(queries)
    assert streamed.predict_batch(queries, node_budget=5) == scratch.predict_batch(
        queries, node_budget=5
    )


def test_streamed_bandwidth_matches_full_silverman_scan():
    """The O(d) stats-based update equals the O(n·d) full-set Silverman rule."""
    rng = np.random.default_rng(3)
    points = rng.normal(loc=5.0, scale=0.3, size=(200, 4))
    tree = BayesTree(dimension=4, config=small_config())
    for point in points:
        tree.insert(point)
    np.testing.assert_allclose(tree.bandwidth, silverman_bandwidth(points), rtol=1e-9)


def test_bandwidth_epoch_advances_without_restamping_entries():
    tree = BayesTree(dimension=2, config=small_config())
    rng = np.random.default_rng(4)
    epochs = []
    for point in rng.normal(size=(20, 2)):
        tree.insert(point)
        epochs.append(tree.bandwidth_epoch)
    assert epochs == sorted(epochs) and len(set(epochs)) == len(epochs)
    # No stamped copies anywhere: the shared vector is resolved at evaluation.
    assert all(entry.bandwidth is None for entry in tree.index.iter_leaf_entries())


def test_leaf_arrays_are_patched_incrementally_on_insert():
    rng = np.random.default_rng(5)
    tree = BayesTree(dimension=3, config=small_config()).fit(rng.normal(size=(50, 3)))
    means_before = tree.leaf_arrays()[0].copy()
    # Cached between queries while the model is unchanged.
    assert tree.leaf_arrays() is tree.leaf_arrays()
    new_point = rng.normal(size=3)
    tree.insert(new_point)
    means, scales, kinds, log_weights = tree.leaf_arrays()
    assert means.shape == (51, 3)
    np.testing.assert_array_equal(means[:50], means_before)
    np.testing.assert_array_equal(means[50], new_point)
    # All kernels share the current epoch's bandwidth.
    np.testing.assert_allclose(scales, np.broadcast_to(tree.bandwidth**2, scales.shape))
    np.testing.assert_allclose(log_weights, np.full(51, -np.log(51)))


def test_direct_index_mutation_falls_back_to_full_rebuild():
    rng = np.random.default_rng(6)
    tree = BayesTree(dimension=2, config=small_config()).fit(rng.normal(size=(30, 2)))
    # Bypass the Bayes tree maintenance entirely (not part of the API, but the
    # packed arrays must never silently go stale).
    tree.index.insert(np.array([9.0, 9.0]), kernel="gaussian")
    means, _, _, log_weights = tree.leaf_arrays()
    assert means.shape[0] == 31
    assert log_weights.shape[0] == 31


def test_streamed_bandwidth_is_stable_for_large_offset_data():
    """Regression: naive SS/n - mean**2 accumulation cancels catastrophically.

    Timestamp-like features (huge mean, tiny spread) used to lose all spread
    information in the running sums; the statistics are now accumulated
    around the first observation as origin, which is shift-invariant.
    """
    rng = np.random.default_rng(8)
    points = rng.normal(scale=1e-3, size=(300, 2)) + np.array([1.7e6, 3.0e6])
    tree = BayesTree(dimension=2, config=small_config())
    for point in points:
        tree.insert(point)
    np.testing.assert_allclose(tree.bandwidth, silverman_bandwidth(points), rtol=1e-6)


def test_adopted_index_is_normalised_to_the_tree_kernel():
    """Regression: adopting an index whose leaf entries disagree with
    ``config.kernel`` must not leave the packed leaf arrays and the frontier
    refinement path evaluating two different models."""
    from repro.index import RStarTree

    rng = np.random.default_rng(9)
    points = rng.normal(size=(40, 2))
    index = RStarTree(dimension=2, params=small_config().tree)
    for point in points:
        index.insert(point)  # defaults to kernel="gaussian", no bandwidth
    config = small_config(kernel="epanechnikov")
    tree = BayesTree(dimension=2, config=config).adopt_index(index)
    assert all(
        entry.kernel == "epanechnikov" and entry.bandwidth is None
        for entry in tree.index.iter_leaf_entries()
    )
    query = points[3] + 0.05
    assert tree.full_model_density(query) == pytest.approx(
        float(tree.density_batch(query)), rel=1e-9
    )


def test_explicitly_stamped_entries_keep_both_full_model_paths_equivalent():
    """Regression: the broadcast leaf_arrays fast path must not override
    explicit per-entry bandwidths that the frontier path honours."""
    rng = np.random.default_rng(11)
    tree = BayesTree(dimension=2, config=small_config()).fit(rng.normal(size=(40, 2)))
    wide = tree.bandwidth * 3.0
    for entry in tree.index.iter_leaf_entries():
        entry.bandwidth = wide
    query = rng.normal(size=2)
    assert tree.full_model_density(query) == pytest.approx(
        float(tree.density_batch(query)), rel=1e-9
    )


def test_batch_budgets_reject_fractional_values():
    features, labels = interleaved_data(seed=10, count=30)
    classifier = AnytimeBayesClassifier(config=small_config()).fit(features, labels)
    with pytest.raises(ValueError):
        classifier.classify_anytime_batch(features[:4], max_nodes=5.9)
    with pytest.raises(ValueError):
        classifier.classify_anytime_batch(features[:4], max_nodes=[1.0, 2.0, 3.0, 4.0])


def test_adopted_bulk_loaded_tree_matches_fitted_statistics():
    from repro.bulkload import make_bulk_loader

    rng = np.random.default_rng(7)
    points = rng.normal(size=(80, 2))
    config = small_config()
    fitted = BayesTree(dimension=2, config=config).fit(points)
    loaded = make_bulk_loader("hilbert", config=config).build_tree(points)
    np.testing.assert_allclose(loaded.bandwidth, fitted.bandwidth, rtol=1e-9)
    queries = rng.normal(size=(10, 2))
    np.testing.assert_allclose(
        loaded.log_density_batch(queries), fitted.log_density_batch(queries), rtol=1e-9
    )
