"""Flat forest encoding: descent over columns must be bit-identical.

The acceptance bar of ISSUE 6's tentpole: compiling a live forest into the
pre/post-order column encoding (:mod:`repro.core.flat`) and classifying over
the flat representation yields hash-equal classification traces — same
predictions, same nodes-read counts, same per-step log posteriors to the
last float64 bit — including under active exponential decay and across every
descent strategy.  Column serialisation round-trips exactly and malformed
columns are rejected with :class:`ValueError` before anything serves them.
"""

import numpy as np
import pytest

from repro.core import AnytimeBayesClassifier, BayesTreeConfig, FlatForest, FlatTree
from repro.core.descent import DESCENT_STRATEGIES
from repro.data import make_dataset
from repro.evaluation import classification_trace_hash


def _streamed_forest(size=260, decay_rate=0.02, descent="glo", seed=3):
    dataset = make_dataset("pendigits", size=size, random_state=seed)
    config = BayesTreeConfig(
        decay_rate=decay_rate, expiry_threshold=1e-3 if decay_rate else 0.0
    )
    classifier = AnytimeBayesClassifier(config=config, descent=descent)
    for i in range(size - 60):
        classifier.partial_fit(
            dataset.features[i], dataset.labels[i], timestamp=float(i) * 0.5
        )
    if decay_rate:
        classifier.advance_time((size - 60) * 0.5 + 3.0)
    return classifier, dataset.features[-40:]


def _trace(forest, queries, max_nodes=25):
    return classification_trace_hash(
        forest.classify_anytime(query, max_nodes=max_nodes) for query in queries
    )


@pytest.mark.parametrize("descent", sorted(DESCENT_STRATEGIES))
def test_flat_descent_trace_is_bit_identical(descent):
    classifier, queries = _streamed_forest(descent=descent)
    flat = classifier.compile_flat()
    assert isinstance(flat, FlatForest)
    assert _trace(flat, queries) == _trace(classifier, queries)


@pytest.mark.parametrize("decay_rate", [0.0, 0.05])
def test_flat_batch_paths_are_bit_identical(decay_rate):
    classifier, queries = _streamed_forest(decay_rate=decay_rate)
    flat = classifier.compile_flat()
    assert flat.predict_batch(queries) == classifier.predict_batch(queries)
    assert flat.predict_batch(queries, node_budget=12) == classifier.predict_batch(
        queries, node_budget=12
    )
    budgets = np.asarray([4, 9, 17] * (len(queries) // 3 + 1))[: len(queries)]
    assert classification_trace_hash(
        flat.classify_anytime_batch(queries, max_nodes=budgets)
    ) == classification_trace_hash(
        classifier.classify_anytime_batch(queries, max_nodes=budgets)
    )


def test_column_roundtrip_preserves_traces():
    classifier, queries = _streamed_forest()
    flat = classifier.compile_flat()
    rebuilt = FlatForest.from_columns(
        flat.to_columns(),
        labels=flat.labels,
        descent=classifier.descent,
        qbk_k=classifier.qbk_k,
        dimension=classifier.dimension,
    )
    assert rebuilt.labels == flat.labels
    assert rebuilt.log_priors == flat.log_priors
    assert _trace(rebuilt, queries) == _trace(classifier, queries)


def test_structure_stats_reflect_the_object_graph():
    classifier, _ = _streamed_forest()
    stats = classifier.compile_flat().structure_stats()
    assert stats["n_classes"] == len(classifier.trees)
    total_kernels = sum(
        1 for tree in classifier.trees.values() for _ in tree.index.iter_leaf_entries()
    )
    assert stats["total_kernels"] == total_kernels
    for label, tree in classifier.trees.items():
        per_class = stats["classes"][str(label)]
        assert per_class["height"] == tree.index.height
        assert per_class["n_kernels"] == sum(1 for _ in tree.index.iter_leaf_entries())
        # Depth profile covers every kernel exactly once.
        assert sum(per_class["depth_profile"]) == per_class["n_kernels"]
        if per_class["n_kernels"]:
            assert 0.0 < per_class["leaf_occupancy"] <= 1.0
            assert per_class["max_kernel_depth"] >= per_class["mean_kernel_depth"]
        # Roots partition the kernels via the [pre, post) interval columns.
        assert sum(per_class["root_subtree_kernels"]) == per_class["n_kernels"]


def test_malformed_columns_are_rejected():
    classifier, _ = _streamed_forest(size=160)
    label = next(iter(classifier.trees))
    tree = classifier.trees[label]
    columns = FlatTree.compile(tree).to_columns()

    missing = dict(columns)
    missing.pop("entry_means")
    with pytest.raises(ValueError, match="entry_means"):
        FlatTree.from_columns(missing)

    truncated = dict(columns)
    truncated["entry_n"] = truncated["entry_n"][:-1]
    with pytest.raises(ValueError):
        FlatTree.from_columns(truncated)

    # Subtree intervals that disagree with the column lengths must not load:
    # a descent over them would slice out of bounds.
    torn = dict(columns)
    post = np.array(torn["post"], copy=True)
    post[post >= 0] = post[post >= 0] + 1
    torn["post"] = post
    with pytest.raises(ValueError):
        FlatTree.from_columns(torn)


def test_flat_forest_is_read_only_surface():
    classifier, queries = _streamed_forest(size=160)
    flat = classifier.compile_flat()
    assert not hasattr(flat, "partial_fit")
    assert flat.nbytes() > 0
    # Validation mirrors the live classifier's error contract.
    with pytest.raises(ValueError, match="max_nodes"):
        flat.classify_anytime(queries[0], max_nodes=-1)
    with pytest.raises(ValueError, match="(m, d)"):
        flat.predict_batch(queries[0])
