"""Behaviour of the adaptive (decayed) Bayes forest on evolving streams."""

import numpy as np
import pytest

from repro.core import AnytimeBayesClassifier, BayesTree, BayesTreeConfig
from repro.evaluation import run_drift_recovery_experiment


def _feed(classifier, rng, center, label, count, start, gap=1.0):
    now = start
    for _ in range(count):
        now += gap
        classifier.partial_fit(rng.normal(center, 1.0), label, timestamp=now)
    return now


class TestDecayedPriors:
    def test_priors_normalise_to_one_and_favor_recency(self):
        rng = np.random.default_rng(0)
        classifier = AnytimeBayesClassifier(config=BayesTreeConfig(decay_rate=0.05))
        now = _feed(classifier, rng, [0.0, 0.0], "old", 100, start=0.0)
        _feed(classifier, rng, [5.0, 5.0], "new", 100, start=now)
        priors = classifier.priors
        assert sum(priors.values()) == pytest.approx(1.0)
        # Equal counts, but the old class's kernels decayed for 100 extra
        # time units — its decayed prior mass must be far smaller.
        assert priors["new"] > 0.9
        assert priors["old"] < 0.1
        assert sum(classifier.log_priors.values()) < 0  # finite log priors

    def test_priors_without_decay_stay_frequencies(self):
        rng = np.random.default_rng(1)
        classifier = AnytimeBayesClassifier(config=BayesTreeConfig())
        _feed(classifier, rng, [0.0, 0.0], 0, 30, start=0.0)
        _feed(classifier, rng, [5.0, 5.0], 1, 10, start=100.0)
        assert classifier.priors == {0: 0.75, 1: 0.25}

    def test_advance_time_refreshes_priors_after_expiry(self):
        """Regression: expiry triggered by pure time passage must not leave
        a stale prior cache (prediction-only streams never call partial_fit,
        so nothing else would invalidate it)."""
        rng = np.random.default_rng(9)
        config = BayesTreeConfig(decay_rate=0.1, expiry_threshold=1e-2)
        classifier = AnytimeBayesClassifier(config=config)
        _feed(classifier, rng, [0.0, 0.0], 0, 6, start=0.0)
        _feed(classifier, rng, [5.0, 5.0], 1, 6, start=60.0)
        assert classifier.priors[0] > 0.0  # populate the cache
        # At t=100 the class-0 kernels (ages ~95) are below the threshold
        # while the class-1 kernels (ages ~35) survive.
        classifier.advance_time(100.0)
        assert classifier.trees[0].n_objects == 0
        assert classifier.trees[1].n_objects > 0
        assert classifier.priors[0] == 0.0
        assert classifier.priors[1] == 1.0

    def test_pure_time_passage_keeps_prior_ratios(self):
        rng = np.random.default_rng(2)
        classifier = AnytimeBayesClassifier(config=BayesTreeConfig(decay_rate=0.1))
        now = _feed(classifier, rng, [0.0, 0.0], 0, 40, start=0.0)
        _feed(classifier, rng, [4.0, 4.0], 1, 20, start=now - 20.0, gap=0.5)
        before = dict(classifier.priors)
        classifier.advance_time(classifier._now + 30.0)
        classifier._invalidate_priors()
        after = classifier.priors
        for label in before:
            assert after[label] == pytest.approx(before[label], rel=1e-9)


class TestExpiry:
    def test_expiry_keeps_invariants_and_bounds_memory(self):
        rng = np.random.default_rng(3)
        config = BayesTreeConfig(decay_rate=0.05, expiry_threshold=1e-2)
        tree = BayesTree(dimension=2, config=config)
        now = 0.0
        for _ in range(500):
            now += 1.0
            tree.insert(rng.normal(size=2), timestamp=now)
            assert tree.n_objects <= 300  # ~1.5 expiry horizons of arrivals
        # Horizon: log2(1/1e-2)/0.05 ~ 133 time units; far fewer survive.
        assert tree.n_objects < 250
        tree.validate()
        # The model stays queryable and consistent after sweeps.
        density = tree.full_model_density(np.zeros(2))
        assert np.isfinite(density) and density >= 0.0

    def test_explicit_expire_reports_dropped_and_revalidates(self):
        rng = np.random.default_rng(4)
        config = BayesTreeConfig(decay_rate=0.1, expiry_threshold=1e-3)
        tree = BayesTree(dimension=2, config=config)
        for i in range(40):
            tree.insert(rng.normal(size=2), timestamp=float(i))
        before = tree.n_objects
        # Advance the raw clock (bypassing advance_time's automatic sweep) so
        # the explicit expire() call observes the stale state itself.
        tree.clock.advance(1000.0)
        dropped = tree.expire()
        assert dropped == before
        assert tree.n_objects == 0
        tree.validate()

    def test_advance_time_alone_triggers_expiry(self):
        rng = np.random.default_rng(8)
        config = BayesTreeConfig(decay_rate=0.1, expiry_threshold=1e-3)
        tree = BayesTree(dimension=2, config=config)
        for i in range(40):
            tree.insert(rng.normal(size=2), timestamp=float(i))
        tree.advance_time(1000.0)  # a class that stops receiving data
        assert tree.n_objects == 0
        tree.validate()

    def test_expiry_disabled_without_threshold(self):
        rng = np.random.default_rng(5)
        tree = BayesTree(dimension=2, config=BayesTreeConfig(decay_rate=0.1))
        for i in range(50):
            tree.insert(rng.normal(size=2), timestamp=float(i))
        assert tree.expire() == 0
        assert tree.n_objects == 50

    def test_class_disappearance_and_recurrence(self):
        rng = np.random.default_rng(6)
        config = BayesTreeConfig(decay_rate=0.05, expiry_threshold=1e-3)
        classifier = AnytimeBayesClassifier(config=config)
        now = _feed(classifier, rng, [0.0, 0.0], 0, 100, start=0.0)
        now = _feed(classifier, rng, [6.0, 6.0], 1, 600, start=now)
        assert classifier.trees[0].n_objects == 0  # class 0 fully expired
        # Queries fall back to the classes that still hold data.
        assert classifier.predict(np.array([0.0, 0.0])) == 1
        assert classifier.priors[0] == 0.0
        # The class recurs: new data immediately revives it.
        _feed(classifier, rng, [0.0, 0.0], 0, 30, start=now)
        assert classifier.trees[0].n_objects > 0
        assert classifier.predict(np.array([0.0, 0.0])) == 0


class TestDriftRecovery:
    def test_decayed_forest_beats_plain_after_sudden_drift(self):
        result = run_drift_recovery_experiment(
            size=600,
            warmup=64,
            window=100,
            decay_rate=0.02,
            expiry_threshold=1e-3,
            random_state=0,
        )
        # The concept swap makes stale kernels actively misleading: the
        # never-forgetting forest stays far below chance while the decayed
        # forest recovers.  The margin is enormous (~0.12 vs ~0.76), so the
        # strict inequality asserted here is robust to seeds.
        assert result.decayed_post_drift_accuracy > result.plain_post_drift_accuracy
        assert result.decayed_post_drift_accuracy > 0.6
        assert result.plain_post_drift_accuracy < 0.4
        # Both do equally well before the drift.
        pre = slice(0, result.drift_position)
        assert abs(
            float(result.decayed_curve[pre].mean()) - float(result.plain_curve[pre].mean())
        ) < 0.1


class TestDecayedBandwidth:
    def test_bandwidth_tracks_effective_sample_size(self):
        rng = np.random.default_rng(7)
        plain = BayesTree(dimension=2, config=BayesTreeConfig())
        decayed = BayesTree(dimension=2, config=BayesTreeConfig(decay_rate=0.05))
        points = rng.normal(size=(200, 2))
        for i, point in enumerate(points):
            plain.insert(point)
            decayed.insert(point, timestamp=float(i))
        # Fewer effective samples => Silverman widens the kernels.
        assert np.all(decayed.bandwidth > plain.bandwidth)

    def test_single_effective_observation_falls_back_to_unit_bandwidth(self):
        tree = BayesTree(dimension=3, config=BayesTreeConfig(decay_rate=1.0))
        tree.insert(np.zeros(3), timestamp=0.0)
        np.testing.assert_array_equal(tree.bandwidth, np.ones(3))
