"""Tests for the single-tree multi-class classifier (paper §4.1 extension)."""

import numpy as np
import pytest

from repro.core import AnytimeBayesClassifier, BayesTreeConfig, SingleTreeAnytimeClassifier
from repro.index import TreeParameters


def small_config():
    return BayesTreeConfig(
        tree=TreeParameters(max_fanout=4, min_fanout=2, leaf_capacity=4, leaf_min=2)
    )


def gaussian_blobs(seed=0, per_class=60, centers=((0.0, 0.0), (7.0, 7.0))):
    rng = np.random.default_rng(seed)
    points, labels = [], []
    for label, center in enumerate(centers):
        points.append(rng.normal(loc=center, scale=1.0, size=(per_class, 2)))
        labels.extend([label] * per_class)
    return np.vstack(points), np.array(labels)


def test_fit_builds_single_tree_with_all_objects():
    points, labels = gaussian_blobs()
    classifier = SingleTreeAnytimeClassifier(config=small_config()).fit(points, labels)
    assert classifier.is_fitted
    assert classifier.tree.n_objects == len(points)
    assert set(classifier.classes) == {0, 1}
    assert sum(classifier.priors.values()) == pytest.approx(1.0)


def test_fit_validates_inputs():
    classifier = SingleTreeAnytimeClassifier(config=small_config())
    with pytest.raises(ValueError):
        classifier.fit(np.zeros((4, 2)), [0, 1])
    with pytest.raises(ValueError):
        classifier.classify_anytime(np.zeros(2), max_nodes=3)


def test_classification_accuracy_on_separable_data():
    points, labels = gaussian_blobs(seed=1)
    classifier = SingleTreeAnytimeClassifier(config=small_config()).fit(points, labels)
    test_points, test_labels = gaussian_blobs(seed=2, per_class=25)
    predictions = [classifier.predict(p, node_budget=15) for p in test_points]
    accuracy = np.mean(np.array(predictions) == test_labels)
    assert accuracy > 0.9


def test_anytime_record_structure():
    points, labels = gaussian_blobs(seed=3)
    classifier = SingleTreeAnytimeClassifier(config=small_config()).fit(points, labels)
    result = classifier.classify_anytime(points[0], max_nodes=10)
    assert len(result.predictions) == result.nodes_read + 1
    assert all(set(p.keys()) == {0, 1} for p in result.posteriors)
    # Record parity with the multi-tree classifier: the log-space view is
    # filled too and is consistent with the linear posteriors.
    assert len(result.log_posteriors) == len(result.posteriors)
    for linear, logs in zip(result.posteriors, result.log_posteriors):
        for label, value in linear.items():
            expected = np.log(value) if value > 0 else -np.inf
            assert logs[label] == pytest.approx(expected, rel=1e-12)


def test_single_descent_refines_all_classes_in_parallel():
    """Both classes' posteriors change within a few node reads of one descent."""
    points, labels = gaussian_blobs(seed=4)
    classifier = SingleTreeAnytimeClassifier(config=small_config()).fit(points, labels)
    query = points[0]
    result = classifier.classify_anytime(query, max_nodes=8)
    first, last = result.posteriors[0], result.posteriors[-1]
    changed = sum(1 for label in (0, 1) if not np.isclose(first[label], last[label]))
    assert changed >= 1


def test_partial_fit_adds_objects_online():
    points, labels = gaussian_blobs(seed=5, per_class=30)
    classifier = SingleTreeAnytimeClassifier(config=small_config()).fit(points, labels)
    before = classifier.tree.n_objects
    classifier.partial_fit(np.array([7.0, 7.0]), label=1)
    assert classifier.tree.n_objects == before + 1
    assert classifier.predict(np.array([7.0, 7.0]), node_budget=10) == 1


def test_agrees_with_multi_tree_classifier_at_full_refinement():
    """With every node read, both variants compute the same Bayes decision."""
    points, labels = gaussian_blobs(seed=6, per_class=40)
    single = SingleTreeAnytimeClassifier(config=small_config()).fit(points, labels)
    multi = AnytimeBayesClassifier(config=small_config()).fit(points, labels)
    rng = np.random.default_rng(7)
    test_points = rng.normal(loc=3.5, scale=3.0, size=(30, 2))
    agreements = sum(
        single.predict(p) == multi.predict(p) for p in test_points
    )
    assert agreements >= 27  # identical full kernel models up to bandwidth differences
