"""``decay_rate=0`` must be bit-identical to the never-forgetting tree.

The adaptive Bayes forest refactors the statistics spine of the whole stack
(index cluster features, running training statistics, packed leaf arrays,
priors, stream driver).  These tests pin the acceptance criterion: with a
zero decay rate — even with the logical clock advancing — every prediction,
every packed array and the full test-then-train trace equal the plain tree's
bit for bit.
"""

import numpy as np

from repro.core import AnytimeBayesClassifier, BayesTree, BayesTreeConfig
from repro.data import make_dataset
from repro.stream import DataStream, run_anytime_stream


def _dataset(size=240, seed=11):
    return make_dataset("pendigits", size=size, random_state=seed)


def test_zero_rate_tree_leaf_arrays_identical_despite_clock():
    dataset = _dataset()
    plain = BayesTree(dimension=dataset.n_features, config=BayesTreeConfig())
    clocked = BayesTree(dimension=dataset.n_features, config=BayesTreeConfig(decay_rate=0.0))
    for i, point in enumerate(dataset.features):
        plain.insert(point)
        clocked.insert(point, timestamp=float(i))
    clocked.advance_time(1e6)  # pure time passage must change nothing
    np.testing.assert_array_equal(plain.bandwidth, clocked.bandwidth)
    for a, b in zip(plain.leaf_arrays(), clocked.leaf_arrays()):
        np.testing.assert_array_equal(np.asarray(a), np.asarray(b))
    queries = dataset.features[:32]
    np.testing.assert_array_equal(
        plain.log_density_batch(queries), clocked.log_density_batch(queries)
    )


def test_zero_rate_predictions_identical():
    dataset = _dataset()
    plain = AnytimeBayesClassifier(config=BayesTreeConfig())
    clocked = AnytimeBayesClassifier(config=BayesTreeConfig(decay_rate=0.0))
    for i in range(180):
        plain.partial_fit(dataset.features[i], dataset.labels[i])
        clocked.partial_fit(dataset.features[i], dataset.labels[i], timestamp=float(i))
    assert plain.priors == clocked.priors
    queries = dataset.features[180:]
    assert plain.predict_batch(queries) == clocked.predict_batch(queries)
    for query in queries[:8]:
        a = plain.classify_anytime(query, max_nodes=15)
        b = clocked.classify_anytime(query, max_nodes=15)
        assert a.predictions == b.predictions
        assert a.log_posteriors == b.log_posteriors
        assert a.nodes_read == b.nodes_read


def test_zero_rate_stream_trace_identical_to_clockless_protocol():
    """The driver's decay plumbing must be invisible at rate 0.

    One classifier is run through the (timestamp-driving) stream driver, the
    other through a hand-rolled clock-less test-then-train loop replaying the
    exact pre-decay protocol; traces must match bit for bit.
    """
    dataset = _dataset(size=300, seed=5)
    config = BayesTreeConfig()
    head_x, head_y = dataset.features[:60], dataset.labels[:60]
    tail = type(dataset)(dataset.name, dataset.features[60:], dataset.labels[60:], dataset.n_classes)

    driven = AnytimeBayesClassifier(config=config)
    driven.fit(head_x, head_y)
    stream = DataStream(tail, random_state=9)
    result = run_anytime_stream(driven, stream, online_learning=True, chunk_size=8)

    manual = AnytimeBayesClassifier(config=config)
    manual.fit(head_x, head_y)
    items = DataStream(tail, random_state=9).items()
    expected = []
    for start in range(0, len(items), 8):
        chunk = items[start : start + 8]
        features = np.stack([item.features for item in chunk])
        budgets = [item.budget for item in chunk]
        classifications = manual.classify_anytime_batch(
            features, max_nodes=budgets, record_history=False
        )
        expected.extend(c.final_prediction for c in classifications)
        for item in chunk:
            manual.partial_fit(item.features, item.label)

    assert [step.prediction for step in result.steps] == expected
    for label in manual.trees:
        np.testing.assert_array_equal(
            manual.trees[label].bandwidth, driven.trees[label].bandwidth
        )


def test_decayed_stream_scalar_and_batch_paths_are_trace_identical():
    """Under active decay the batched and scalar drivers must still agree."""
    dataset = _dataset(size=200, seed=2)
    config = BayesTreeConfig(decay_rate=0.02, expiry_threshold=1e-3)
    head_x, head_y = dataset.features[:50], dataset.labels[:50]
    tail = type(dataset)(dataset.name, dataset.features[50:], dataset.labels[50:], dataset.n_classes)

    traces = []
    for use_batch in (True, False):
        classifier = AnytimeBayesClassifier(config=config)
        for i in range(50):
            classifier.partial_fit(head_x[i], head_y[i], timestamp=0.0)
        stream = DataStream(tail, random_state=4)
        result = run_anytime_stream(
            classifier, stream, online_learning=True, chunk_size=16, use_batch=use_batch
        )
        traces.append([(s.prediction, s.correct, s.nodes_read) for s in result.steps])
    assert traces[0] == traces[1]
