"""Tests for the anytime Bayes classifier (multi-tree, qbk strategy)."""

import numpy as np
import pytest

from repro.core import (
    AnytimeBayesClassifier,
    BayesTree,
    BayesTreeConfig,
    default_qbk_k,
)
from repro.index import TreeParameters


def small_config():
    return BayesTreeConfig(
        tree=TreeParameters(max_fanout=4, min_fanout=2, leaf_capacity=4, leaf_min=2)
    )


def gaussian_blobs(seed=0, per_class=80, centers=((0.0, 0.0), (6.0, 6.0), (0.0, 6.0))):
    rng = np.random.default_rng(seed)
    points, labels = [], []
    for label, center in enumerate(centers):
        points.append(rng.normal(loc=center, scale=1.0, size=(per_class, 2)))
        labels.extend([label] * per_class)
    return np.vstack(points), np.array(labels)


def fitted_classifier(seed=0, **kwargs):
    points, labels = gaussian_blobs(seed)
    classifier = AnytimeBayesClassifier(config=small_config(), **kwargs)
    return classifier.fit(points, labels), points, labels


class TestDefaultQbkK:
    def test_matches_paper_rule(self):
        assert default_qbk_k(10) == 2   # pendigits
        assert default_qbk_k(26) == 2   # letter
        assert default_qbk_k(7) == 2    # covertype
        assert default_qbk_k(2) == 2    # gender (paper §3.2: k = 2)
        assert default_qbk_k(1) == 1

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            default_qbk_k(0)


class TestTraining:
    def test_one_tree_per_class_and_priors(self):
        classifier, points, labels = fitted_classifier()
        assert set(classifier.classes) == {0, 1, 2}
        assert sum(classifier.priors.values()) == pytest.approx(1.0)
        for label in classifier.classes:
            assert classifier.priors[label] == pytest.approx(1 / 3)
            assert classifier.trees[label].n_objects == 80

    def test_fit_validates_inputs(self):
        classifier = AnytimeBayesClassifier(config=small_config())
        with pytest.raises(ValueError):
            classifier.fit(np.zeros((5, 2)), [0, 1])
        with pytest.raises(ValueError):
            classifier.fit(np.zeros(5), [0] * 5)

    def test_unfitted_classifier_rejects_queries(self):
        classifier = AnytimeBayesClassifier(config=small_config())
        with pytest.raises(ValueError):
            classifier.classify_anytime(np.zeros(2), max_nodes=5)

    def test_partial_fit_learns_new_classes_online(self):
        rng = np.random.default_rng(1)
        classifier = AnytimeBayesClassifier(config=small_config())
        for _ in range(30):
            classifier.partial_fit(rng.normal(loc=0.0, size=2), label="a")
        for _ in range(30):
            classifier.partial_fit(rng.normal(loc=8.0, size=2), label="b")
        assert set(classifier.classes) == {"a", "b"}
        assert classifier.predict(np.array([8.0, 8.0]), node_budget=10) == "b"
        assert classifier.predict(np.array([0.0, 0.0]), node_budget=10) == "a"

    def test_set_tree_attaches_external_tree(self):
        points, labels = gaussian_blobs()
        classifier = AnytimeBayesClassifier(config=small_config())
        for label in (0, 1, 2):
            tree = BayesTree(dimension=2, config=small_config()).fit(points[labels == label])
            classifier.set_tree(label, tree)
        assert classifier.is_fitted
        assert sum(classifier.priors.values()) == pytest.approx(1.0)
        assert classifier.predict(np.array([6.0, 6.0]), node_budget=10) == 1


class TestAnytimeClassification:
    def test_predictions_recorded_after_every_node(self):
        classifier, points, labels = fitted_classifier()
        result = classifier.classify_anytime(points[0], max_nodes=15)
        assert len(result.predictions) == result.nodes_read + 1
        assert len(result.posteriors) == len(result.predictions)
        assert result.nodes_read <= 15

    def test_prediction_after_clamps(self):
        classifier, points, _ = fitted_classifier()
        result = classifier.classify_anytime(points[0], max_nodes=5)
        assert result.prediction_after(0) == result.predictions[0]
        assert result.prediction_after(10_000) == result.final_prediction

    def test_rejects_negative_budget(self):
        classifier, points, _ = fitted_classifier()
        with pytest.raises(ValueError):
            classifier.classify_anytime(points[0], max_nodes=-1)

    def test_zero_budget_still_gives_a_prediction(self):
        classifier, points, _ = fitted_classifier()
        result = classifier.classify_anytime(points[0], max_nodes=0)
        assert len(result.predictions) == 1
        assert result.nodes_read == 0

    def test_accuracy_on_separable_blobs_is_high(self):
        classifier, points, labels = fitted_classifier(seed=3)
        rng = np.random.default_rng(99)
        test_points, test_labels = gaussian_blobs(seed=123, per_class=20)
        predictions = [classifier.predict(p, node_budget=20) for p in test_points]
        accuracy = np.mean(np.array(predictions) == test_labels)
        assert accuracy > 0.9

    def test_more_nodes_never_hurts_on_average(self):
        """Anytime property: accuracy after many reads >= accuracy at the root (on average)."""
        classifier, _, _ = fitted_classifier(seed=4)
        test_points, test_labels = gaussian_blobs(seed=321, per_class=25)
        correct_start, correct_end = 0, 0
        for point, label in zip(test_points, test_labels):
            result = classifier.classify_anytime(point, max_nodes=25)
            correct_start += result.predictions[0] == label
            correct_end += result.final_prediction == label
        assert correct_end >= correct_start - 2  # allow tiny fluctuations

    def test_budget_exhausts_gracefully_when_trees_are_small(self):
        rng = np.random.default_rng(5)
        points = np.vstack([rng.normal(size=(6, 2)), rng.normal(loc=5.0, size=(6, 2))])
        labels = [0] * 6 + [1] * 6
        classifier = AnytimeBayesClassifier(config=small_config()).fit(points, labels)
        result = classifier.classify_anytime(points[0], max_nodes=1000)
        assert result.nodes_read < 1000  # stopped early: everything refined
        for label in (0, 1):
            assert result.posteriors[-1][label] >= 0

    def test_posterior_probabilities_normalised(self):
        classifier, points, _ = fitted_classifier(seed=6)
        posterior = classifier.posterior_probabilities(points[0], node_budget=10)
        assert sum(posterior.values()) == pytest.approx(1.0)
        assert all(0 <= value <= 1 for value in posterior.values())

    def test_posterior_far_from_data_falls_back_to_uniform(self):
        classifier, _, _ = fitted_classifier(seed=7)
        posterior = classifier.posterior_probabilities(np.full(2, 1e6), node_budget=5)
        assert sum(posterior.values()) == pytest.approx(1.0)
        for value in posterior.values():
            assert value == pytest.approx(1 / 3)

    def test_predict_batch(self):
        classifier, points, labels = fitted_classifier(seed=8)
        predictions = classifier.predict_batch(points[:10], node_budget=10)
        assert len(predictions) == 10

    def test_qbk_refines_only_top_k_classes(self):
        classifier, points, labels = fitted_classifier(seed=9, qbk_k=1)
        query = points[0]  # clearly class 0
        frontier_reads = {label: 0 for label in classifier.classes}

        # Monkey-patch style check: run the anytime loop manually.
        frontiers = {label: tree.frontier(query) for label, tree in classifier.trees.items()}
        posterior = classifier._posterior(frontiers)
        for turn in range(10):
            refined = classifier._refine_one(frontiers, posterior, k=1, turn=turn)
            if refined is None:
                break
            frontier_reads[refined] += 1
            posterior = classifier._posterior(frontiers)
        # With k=1 all reads go to the most probable class (class 0 here).
        assert frontier_reads[0] == max(frontier_reads.values())
        assert frontier_reads[0] >= 8

    def test_descent_strategy_configurable(self):
        for name in ("bft", "dft", "glo", "glo-geometric"):
            classifier, points, _ = fitted_classifier(seed=10, descent=name)
            result = classifier.classify_anytime(points[0], max_nodes=5)
            assert len(result.predictions) >= 1
