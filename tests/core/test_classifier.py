"""Tests for the anytime Bayes classifier (multi-tree, qbk strategy)."""

import numpy as np
import pytest

from repro.core import (
    AnytimeBayesClassifier,
    BayesTree,
    BayesTreeConfig,
    default_qbk_k,
)
from repro.index import TreeParameters


def small_config():
    return BayesTreeConfig(
        tree=TreeParameters(max_fanout=4, min_fanout=2, leaf_capacity=4, leaf_min=2)
    )


def gaussian_blobs(seed=0, per_class=80, centers=((0.0, 0.0), (6.0, 6.0), (0.0, 6.0))):
    rng = np.random.default_rng(seed)
    points, labels = [], []
    for label, center in enumerate(centers):
        points.append(rng.normal(loc=center, scale=1.0, size=(per_class, 2)))
        labels.extend([label] * per_class)
    return np.vstack(points), np.array(labels)


def fitted_classifier(seed=0, **kwargs):
    points, labels = gaussian_blobs(seed)
    classifier = AnytimeBayesClassifier(config=small_config(), **kwargs)
    return classifier.fit(points, labels), points, labels


class TestDefaultQbkK:
    def test_matches_paper_rule(self):
        assert default_qbk_k(10) == 2   # pendigits
        assert default_qbk_k(26) == 2   # letter
        assert default_qbk_k(7) == 2    # covertype
        assert default_qbk_k(2) == 2    # gender (paper §3.2: k = 2)
        assert default_qbk_k(1) == 1

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            default_qbk_k(0)


class TestTraining:
    def test_one_tree_per_class_and_priors(self):
        classifier, points, labels = fitted_classifier()
        assert set(classifier.classes) == {0, 1, 2}
        assert sum(classifier.priors.values()) == pytest.approx(1.0)
        for label in classifier.classes:
            assert classifier.priors[label] == pytest.approx(1 / 3)
            assert classifier.trees[label].n_objects == 80

    def test_fit_validates_inputs(self):
        classifier = AnytimeBayesClassifier(config=small_config())
        with pytest.raises(ValueError):
            classifier.fit(np.zeros((5, 2)), [0, 1])
        with pytest.raises(ValueError):
            classifier.fit(np.zeros(5), [0] * 5)

    def test_unfitted_classifier_rejects_queries(self):
        classifier = AnytimeBayesClassifier(config=small_config())
        with pytest.raises(ValueError):
            classifier.classify_anytime(np.zeros(2), max_nodes=5)

    def test_partial_fit_learns_new_classes_online(self):
        rng = np.random.default_rng(1)
        classifier = AnytimeBayesClassifier(config=small_config())
        for _ in range(30):
            classifier.partial_fit(rng.normal(loc=0.0, size=2), label="a")
        for _ in range(30):
            classifier.partial_fit(rng.normal(loc=8.0, size=2), label="b")
        assert set(classifier.classes) == {"a", "b"}
        assert classifier.predict(np.array([8.0, 8.0]), node_budget=10) == "b"
        assert classifier.predict(np.array([0.0, 0.0]), node_budget=10) == "a"

    def test_set_tree_attaches_external_tree(self):
        points, labels = gaussian_blobs()
        classifier = AnytimeBayesClassifier(config=small_config())
        for label in (0, 1, 2):
            tree = BayesTree(dimension=2, config=small_config()).fit(points[labels == label])
            classifier.set_tree(label, tree)
        assert classifier.is_fitted
        assert sum(classifier.priors.values()) == pytest.approx(1.0)
        assert classifier.predict(np.array([6.0, 6.0]), node_budget=10) == 1


class TestAnytimeClassification:
    def test_predictions_recorded_after_every_node(self):
        classifier, points, labels = fitted_classifier()
        result = classifier.classify_anytime(points[0], max_nodes=15)
        assert len(result.predictions) == result.nodes_read + 1
        assert len(result.posteriors) == len(result.predictions)
        assert result.nodes_read <= 15

    def test_prediction_after_clamps(self):
        classifier, points, _ = fitted_classifier()
        result = classifier.classify_anytime(points[0], max_nodes=5)
        assert result.prediction_after(0) == result.predictions[0]
        assert result.prediction_after(10_000) == result.final_prediction

    def test_rejects_negative_budget(self):
        classifier, points, _ = fitted_classifier()
        with pytest.raises(ValueError):
            classifier.classify_anytime(points[0], max_nodes=-1)

    def test_zero_budget_still_gives_a_prediction(self):
        classifier, points, _ = fitted_classifier()
        result = classifier.classify_anytime(points[0], max_nodes=0)
        assert len(result.predictions) == 1
        assert result.nodes_read == 0

    def test_accuracy_on_separable_blobs_is_high(self):
        classifier, points, labels = fitted_classifier(seed=3)
        rng = np.random.default_rng(99)
        test_points, test_labels = gaussian_blobs(seed=123, per_class=20)
        predictions = [classifier.predict(p, node_budget=20) for p in test_points]
        accuracy = np.mean(np.array(predictions) == test_labels)
        assert accuracy > 0.9

    def test_more_nodes_never_hurts_on_average(self):
        """Anytime property: accuracy after many reads >= accuracy at the root (on average)."""
        classifier, _, _ = fitted_classifier(seed=4)
        test_points, test_labels = gaussian_blobs(seed=321, per_class=25)
        correct_start, correct_end = 0, 0
        for point, label in zip(test_points, test_labels):
            result = classifier.classify_anytime(point, max_nodes=25)
            correct_start += result.predictions[0] == label
            correct_end += result.final_prediction == label
        assert correct_end >= correct_start - 2  # allow tiny fluctuations

    def test_budget_exhausts_gracefully_when_trees_are_small(self):
        rng = np.random.default_rng(5)
        points = np.vstack([rng.normal(size=(6, 2)), rng.normal(loc=5.0, size=(6, 2))])
        labels = [0] * 6 + [1] * 6
        classifier = AnytimeBayesClassifier(config=small_config()).fit(points, labels)
        result = classifier.classify_anytime(points[0], max_nodes=1000)
        assert result.nodes_read < 1000  # stopped early: everything refined
        for label in (0, 1):
            assert result.posteriors[-1][label] >= 0

    def test_posterior_probabilities_normalised(self):
        classifier, points, _ = fitted_classifier(seed=6)
        posterior = classifier.posterior_probabilities(points[0], node_budget=10)
        assert sum(posterior.values()) == pytest.approx(1.0)
        assert all(0 <= value <= 1 for value in posterior.values())

    def test_posterior_far_from_data_stays_well_defined(self):
        """Log-space normalisation keeps far-away posteriors exact.

        The linear-space engine underflowed every class posterior to 0.0 here
        and fell back to the uniform distribution; the log-space path keeps
        the (tiny but distinct) class densities comparable.
        """
        classifier, _, _ = fitted_classifier(seed=7)
        query = np.full(2, 1e6)
        posterior = classifier.posterior_probabilities(query, node_budget=5)
        assert sum(posterior.values()) == pytest.approx(1.0)
        assert all(0 <= value <= 1 for value in posterior.values())
        # The normalised argmax must match the log-posterior ranking.
        result = classifier.classify_anytime(query, max_nodes=5)
        log_raw = result.log_posteriors[-1]
        assert all(np.isfinite(value) for value in log_raw.values())
        expected = max(sorted(log_raw, key=repr), key=lambda label: log_raw[label])
        assert max(posterior, key=posterior.get) == expected

    def test_predict_batch(self):
        classifier, points, labels = fitted_classifier(seed=8)
        predictions = classifier.predict_batch(points[:10], node_budget=10)
        assert len(predictions) == 10

    def test_qbk_refines_only_top_k_classes(self):
        from repro.core.classifier import _QbkRotation

        classifier, points, labels = fitted_classifier(seed=9, qbk_k=1)
        query = points[0]  # clearly class 0
        frontier_reads = {label: 0 for label in classifier.classes}

        # Monkey-patch style check: run the anytime loop manually.
        frontiers = {label: tree.frontier(query) for label, tree in classifier.trees.items()}
        log_posterior = classifier._log_posterior(frontiers)
        rotation = _QbkRotation()
        for _ in range(10):
            refined = classifier._refine_one(frontiers, log_posterior, k=1, rotation=rotation)
            if refined is None:
                break
            frontier_reads[refined] += 1
            log_posterior = classifier._log_posterior(frontiers)
        # With k=1 all reads go to the most probable class (class 0 here).
        assert frontier_reads[0] == max(frontier_reads.values())
        assert frontier_reads[0] >= 8

    def test_descent_strategy_configurable(self):
        for name in ("bft", "dft", "glo", "glo-geometric"):
            classifier, points, _ = fitted_classifier(seed=10, descent=name)
            result = classifier.classify_anytime(points[0], max_nodes=5)
            assert len(result.predictions) >= 1


class TestQbkRotation:
    """Regression tests for the explicit qbk "in turns" rotation (§2.2)."""

    def _rotation(self):
        from repro.core.classifier import _QbkRotation

        return _QbkRotation()

    def test_serves_top_k_in_turns(self):
        rotation = self._rotation()
        served = [rotation.next(["a", "b"]) for _ in range(6)]
        assert served == ["a", "b", "a", "b", "a", "b"]

    def test_reordering_does_not_double_serve(self):
        """A posterior reordering must not hand the same class two reads in a row.

        The old ``top[turn % len(top)]`` indexing did exactly that whenever the
        ranking flipped between steps.
        """
        rotation = self._rotation()
        assert rotation.next(["a", "b"]) == "a"
        # Ranking flips: "b" is now the most probable class.  A global turn
        # counter (turn=1) would index ["b", "a"][1] and serve "a" again.
        assert rotation.next(["b", "a"]) == "b"
        served = [rotation.next(["a", "b"]) for _ in range(4)]
        assert served.count("a") == 2 and served.count("b") == 2

    def test_exhausted_class_drops_out_without_skipping(self):
        """When a frontier exhausts, the remaining top classes keep alternating."""
        rotation = self._rotation()
        assert rotation.next(["a", "b"]) == "a"
        assert rotation.next(["a", "b"]) == "b"
        # Class "a" exhausts; "c" enters the top-k.  The old modulo rotation
        # (turn=2, len(top)=2) would serve the top-ranked class out of turn.
        served = [rotation.next(["b", "c"]) for _ in range(4)]
        assert served == ["c", "b", "c", "b"]

    def test_late_entrant_joins_at_parity_without_monopolising(self):
        """A class entering the top-k after many rounds must not get a burst.

        With raw least-served counts, a class that enters the top-k late
        (serves=0 against incumbents at serves=10) would monopolise the next
        ten reads; the clamped rotation gives it at most one catch-up read
        and then alternates.
        """
        rotation = self._rotation()
        for _ in range(20):
            rotation.next(["a", "b"])  # a and b occupy the top-2 for 20 reads
        served = [rotation.next(["a", "c"]) for _ in range(6)]
        assert served[0] == "c"  # one catch-up read...
        assert served[1:] == ["a", "c", "a", "c", "a"]  # ...then strict turns

    def test_fairness_invariant(self):
        """Within any fixed top set, serve counts never differ by more than one."""
        rotation = self._rotation()
        top = ["a", "b", "c"]
        for _ in range(20):
            rotation.next(top)
            counts = [rotation.serves(label) for label in top]
            assert max(counts) - min(counts) <= 1

    def test_anytime_loop_with_exhausted_frontier_class(self):
        """End-to-end: a class with a tiny (quickly exhausted) tree in the top-k.

        After the tiny tree is fully refined, the qbk rotation must keep
        serving the two remaining classes strictly in turns.
        """
        from repro.core.classifier import _QbkRotation

        rng = np.random.default_rng(42)
        points = np.vstack(
            [
                rng.normal(loc=(0.0, 0.0), scale=1.0, size=(60, 2)),
                rng.normal(loc=(0.5, 0.5), scale=1.0, size=(60, 2)),
                rng.normal(loc=(0.25, 0.0), scale=1.0, size=(5, 2)),  # tiny class
            ]
        )
        labels = [0] * 60 + [1] * 60 + [2] * 5
        classifier = AnytimeBayesClassifier(config=small_config(), qbk_k=3).fit(points, labels)
        query = np.array([0.25, 0.25])  # ambiguous: every class stays in the top-k
        frontiers = {label: tree.frontier(query) for label, tree in classifier.trees.items()}
        rotation = _QbkRotation()
        log_posterior = classifier._log_posterior(frontiers)
        served = []
        # 40 reads: enough to exhaust the tiny class but not the big ones.
        for _ in range(40):
            refined = classifier._refine_one(frontiers, log_posterior, k=3, rotation=rotation)
            if refined is None:
                break
            served.append(refined)
            log_posterior = classifier._log_posterior(frontiers)
        assert frontiers[2].is_fully_refined
        assert not frontiers[0].is_fully_refined and not frontiers[1].is_fully_refined
        exhausted_at = max(index for index, label in enumerate(served) if label == 2)
        tail = served[exhausted_at + 1 :]
        assert len(tail) >= 4
        # Strict alternation among the surviving classes: no skips, no doubles.
        for first, second in zip(tail, tail[1:]):
            assert first != second


class TestLogSpaceUnderflow:
    """Regression tests for the linear-space posterior underflow bug."""

    @staticmethod
    def high_dim_classifier(dim=40, per_class=40, offset=24.0, seed=11):
        rng = np.random.default_rng(seed)
        points = np.vstack(
            [
                rng.normal(loc=0.0, scale=1.0, size=(per_class, dim)),
                rng.normal(loc=offset, scale=1.0, size=(per_class, dim)),
            ]
        )
        labels = [0] * per_class + [1] * per_class
        classifier = AnytimeBayesClassifier(config=small_config()).fit(points, labels)
        return classifier, dim, offset

    def test_high_dimensional_posteriors_stay_finite_in_log_space(self):
        classifier, dim, offset = self.high_dim_classifier()
        # A query between the classes but clearly closer to class 1: every
        # linear-space posterior underflows to exactly 0.0, yet the log-space
        # posteriors remain finite and rank class 1 first.
        query = np.full(dim, offset / 2 + 1.0)
        result = classifier.classify_anytime(query, max_nodes=10)
        linear = result.posteriors[-1]
        logs = result.log_posteriors[-1]
        assert all(value == 0.0 for value in linear.values())  # the historical bug
        assert all(np.isfinite(value) for value in logs.values())
        assert logs[1] > logs[0]
        # The old engine tie-broke the all-zero posteriors by label repr and
        # returned class 0 here; the log-space engine classifies correctly.
        assert result.final_prediction == 1

    def test_high_dimensional_posterior_probabilities_normalised(self):
        classifier, dim, offset = self.high_dim_classifier()
        query = np.full(dim, offset / 2 + 1.0)
        posterior = classifier.posterior_probabilities(query, node_budget=10)
        assert sum(posterior.values()) == pytest.approx(1.0)
        assert posterior[1] > posterior[0]

    def test_high_dimensional_batch_matches_per_query(self):
        classifier, dim, offset = self.high_dim_classifier()
        rng = np.random.default_rng(12)
        queries = np.vstack(
            [
                rng.normal(loc=0.0, size=(5, dim)),
                rng.normal(loc=offset, size=(5, dim)),
                np.full((1, dim), offset / 2 + 1.0),
            ]
        )
        assert classifier.predict_batch(queries) == [classifier.predict(q) for q in queries]
