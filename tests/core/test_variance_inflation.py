"""Tests for the moment-matched directory Gaussians (variance inflation).

A directory entry summarises a subtree of kernel estimators, so its Gaussian
should carry the cluster-feature variance *plus* the squared kernel bandwidth
(see DESIGN.md, substitutions).  These tests pin down that wiring at the
Bayes tree level.
"""

import numpy as np
import pytest

from repro.core import BayesTree, BayesTreeConfig
from repro.core.frontier import pdq
from repro.index import TreeParameters


def small_config(**kwargs):
    return BayesTreeConfig(
        tree=TreeParameters(max_fanout=4, min_fanout=2, leaf_capacity=4, leaf_min=2), **kwargs
    )


def fitted_tree(seed=0, count=80):
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(count, 3))
    return BayesTree(dimension=3, config=small_config()).fit(points), points


def test_variance_inflation_equals_squared_bandwidth():
    tree, _ = fitted_tree()
    np.testing.assert_allclose(tree._variance_inflation(), tree.bandwidth ** 2)


def test_empty_tree_has_no_inflation():
    tree = BayesTree(dimension=2, config=small_config())
    assert tree._variance_inflation() is None


def test_root_model_density_uses_inflated_directory_gaussians():
    tree, points = fitted_tree(seed=1)
    query = points[0]
    expected = pdq(query, tree.root.entries, variance_inflation=tree.bandwidth ** 2)
    assert tree.density(query, nodes=0) == pytest.approx(expected)
    # Without the inflation the coarse model is a different (more peaked) density.
    uninflated = pdq(query, tree.root.entries)
    assert uninflated != pytest.approx(expected)


def test_inflated_coarse_model_never_underflows_between_clusters():
    """Queries between tight clusters keep a strictly positive coarse density."""
    rng = np.random.default_rng(2)
    clusters = [rng.normal(loc=center, scale=0.05, size=(30, 2)) for center in ((0, 0), (4, 4), (0, 4))]
    points = np.vstack(clusters)
    tree = BayesTree(dimension=2, config=small_config()).fit(points)
    query = np.array([2.0, 2.0])  # in the gap between the clusters
    frontier = tree.frontier(query)
    densities = [frontier.density]
    from repro.core import make_descent_strategy

    strategy = make_descent_strategy("glo")
    while frontier.refine(strategy) is not None:
        densities.append(frontier.density)
    assert all(np.isfinite(d) for d in densities)
    assert all(d >= 0 for d in densities)
    # The coarse (inflated) model never drops to exactly zero mid-refinement.
    assert min(densities[:-1]) > 0.0


def test_full_model_density_is_unaffected_by_inflation():
    """At leaf level only kernels remain, so the full model equals the plain KDE."""
    tree, points = fitted_tree(seed=3, count=40)
    query = points[5] + 0.1
    expected = pdq(
        query, list(tree.index.iter_leaf_entries()), leaf_bandwidth=tree.bandwidth
    )
    assert tree.full_model_density(query) == pytest.approx(expected, rel=1e-9)
