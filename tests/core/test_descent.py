"""Tests for the descent strategies (bft, dft, global best)."""

import numpy as np
import pytest

from repro.core import BayesTree, BayesTreeConfig, make_descent_strategy
from repro.core.descent import (
    BreadthFirstDescent,
    DepthFirstDescent,
    GlobalBestDescent,
    DESCENT_STRATEGIES,
)
from repro.index import TreeParameters


def small_config():
    return BayesTreeConfig(
        tree=TreeParameters(max_fanout=4, min_fanout=2, leaf_capacity=4, leaf_min=2)
    )


def fitted_tree(seed=0, count=200):
    rng = np.random.default_rng(seed)
    points = np.vstack(
        [
            rng.normal(loc=0.0, size=(count // 2, 2)),
            rng.normal(loc=8.0, size=(count - count // 2, 2)),
        ]
    )
    return BayesTree(dimension=2, config=small_config()).fit(points), points


def test_factory_produces_each_strategy():
    assert isinstance(make_descent_strategy("bft"), BreadthFirstDescent)
    assert isinstance(make_descent_strategy("dft"), DepthFirstDescent)
    glo = make_descent_strategy("glo")
    assert isinstance(glo, GlobalBestDescent)
    assert glo.measure == "probabilistic"
    geo = make_descent_strategy("glo-geometric")
    assert geo.measure == "geometric"
    with pytest.raises(ValueError):
        make_descent_strategy("unknown")
    with pytest.raises(ValueError):
        GlobalBestDescent(measure="nope")
    assert set(DESCENT_STRATEGIES) == {"bft", "dft", "glo", "glo-geometric"}


def test_breadth_first_refines_levels_in_order():
    tree, points = fitted_tree()
    frontier = tree.frontier(points[0])
    strategy = make_descent_strategy("bft")
    seen_levels = []
    while True:
        candidates = frontier.refinable_items()
        if not candidates:
            break
        chosen = strategy.choose(candidates, frontier.query)
        seen_levels.append(chosen.level)
        frontier.refine_item(chosen)
    # Levels must be non-increasing: higher levels are exhausted before lower ones.
    assert all(a >= b for a, b in zip(seen_levels, seen_levels[1:]))


def test_depth_first_descends_before_broadening():
    tree, points = fitted_tree(seed=1)
    frontier = tree.frontier(points[0])
    strategy = make_descent_strategy("dft")
    # The second refinement must expand a child of the first refined entry,
    # i.e. the newest refinable item (LIFO behaviour).
    first_candidates = frontier.refinable_items()
    first = strategy.choose(first_candidates, frontier.query)
    max_order_before = max(item.order for item in frontier.items)
    frontier.refine_item(first)
    second_candidates = frontier.refinable_items()
    if second_candidates:
        second = strategy.choose(second_candidates, frontier.query)
        if any(item.order > max_order_before for item in second_candidates):
            assert second.order > max_order_before


def test_global_best_probabilistic_picks_highest_contribution():
    tree, points = fitted_tree(seed=2)
    query = points[0]
    frontier = tree.frontier(query)
    strategy = GlobalBestDescent(measure="probabilistic")
    candidates = frontier.refinable_items()
    chosen = strategy.choose(candidates, query)
    assert chosen.contribution == pytest.approx(max(c.contribution for c in candidates))


def test_global_best_geometric_picks_closest_mbr():
    tree, points = fitted_tree(seed=3)
    query = points[0]
    frontier = tree.frontier(query)
    strategy = GlobalBestDescent(measure="geometric")
    candidates = frontier.refinable_items()
    chosen = strategy.choose(candidates, query)
    distances = [c.entry.mbr.min_distance(query) for c in candidates]
    assert chosen.entry.mbr.min_distance(query) == pytest.approx(min(distances))


def test_global_best_refines_the_cluster_containing_the_query():
    """The first few reads should go towards the query's own cluster."""
    tree, points = fitted_tree(seed=4, count=300)
    query = np.array([0.0, 0.0])  # the first cluster's center
    frontier = tree.frontier(query)
    strategy = make_descent_strategy("glo")
    refined_centers = []
    for _ in range(3):
        candidates = frontier.refinable_items()
        if not candidates:
            break
        chosen = strategy.choose(candidates, query)
        refined_centers.append(chosen.entry.cluster_feature.mean())
        frontier.refine_item(chosen)
    for center in refined_centers:
        assert np.linalg.norm(center - query) < np.linalg.norm(center - np.array([8.0, 8.0]))


def test_all_strategies_reach_full_refinement():
    tree, points = fitted_tree(seed=5, count=80)
    for name in DESCENT_STRATEGIES:
        frontier = tree.frontier(points[0])
        frontier.refine_fully(make_descent_strategy(name))
        assert frontier.is_fully_refined
