"""Snapshot round-trips must be bit-identical; broken containers must be rejected.

The acceptance bar of ISSUE 4: saving a decayed, mid-stream forest and
restoring it yields hash-equal classification traces against the
never-persisted forest — including after both keep streaming — and corrupt or
version-mismatched snapshots raise typed errors instead of loading garbage.
"""

import json
import zipfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AnytimeBayesClassifier, BayesTree, BayesTreeConfig
from repro.data import make_dataset
from repro.evaluation import classification_trace_hash
from repro.persist import (
    FORMAT_VERSION,
    SnapshotError,
    SnapshotVersionError,
    load_forest,
    read_manifest,
    save_forest,
)


def _decayed_midstream_forest(size=260, decay_rate=0.02, seed=3):
    """A forest caught mid-stream: active decay, expiry armed, warm caches."""
    dataset = make_dataset("pendigits", size=size, random_state=seed)
    config = BayesTreeConfig(decay_rate=decay_rate, expiry_threshold=1e-3 if decay_rate else 0.0)
    classifier = AnytimeBayesClassifier(config=config)
    for i in range(size - 60):
        classifier.partial_fit(dataset.features[i], dataset.labels[i], timestamp=float(i) * 0.5)
    classifier.advance_time((size - 60) * 0.5 + 3.0)
    # Warm the query caches so the snapshot is taken from a "serving" state.
    classifier.predict_batch(dataset.features[size - 60 : size - 40])
    return classifier, dataset


def _trace(classifier, queries, max_nodes=25):
    return classification_trace_hash(
        classifier.classify_anytime(query, max_nodes=max_nodes) for query in queries
    )


def test_roundtrip_trace_hash_equality_under_decay(tmp_path):
    classifier, dataset = _decayed_midstream_forest()
    queries = dataset.features[-40:]
    path = tmp_path / "forest.npz"
    assert save_forest(classifier, path) == path
    restored = load_forest(path)

    assert restored.predict_batch(queries) == classifier.predict_batch(queries)
    assert _trace(restored, queries) == _trace(classifier, queries)
    assert restored.priors == classifier.priors
    for label, tree in classifier.trees.items():
        other = restored.trees[label]
        np.testing.assert_array_equal(tree.bandwidth, other.bandwidth)
        for ours, theirs in zip(tree.leaf_arrays(), other.leaf_arrays()):
            np.testing.assert_array_equal(np.asarray(ours), np.asarray(theirs))
        other.validate()


def test_roundtrip_then_continued_stream_stays_identical(tmp_path):
    """Decay state must persist: both forests keep streaming identically."""
    classifier, dataset = _decayed_midstream_forest()
    path = tmp_path / "forest.npz"
    save_forest(classifier, path)
    restored = load_forest(path)
    start = len(dataset.features) - 60
    for i in range(start, len(dataset.features)):
        timestamp = float(i) * 0.5 + 10.0
        classifier.partial_fit(dataset.features[i], dataset.labels[i], timestamp=timestamp)
        restored.partial_fit(dataset.features[i], dataset.labels[i], timestamp=timestamp)
    queries = dataset.features[:40]
    assert _trace(restored, queries) == _trace(classifier, queries)
    for label, tree in classifier.trees.items():
        for ours, theirs in zip(tree.leaf_arrays(), restored.trees[label].leaf_arrays()):
            np.testing.assert_array_equal(np.asarray(ours), np.asarray(theirs))


@settings(max_examples=8, deadline=None)
@given(
    decay_rate=st.sampled_from([0.0, 0.005, 0.02, 0.1]),
    seed=st.integers(min_value=0, max_value=4),
)
def test_roundtrip_property_over_rates_and_streams(tmp_path_factory, decay_rate, seed):
    """Property: save→load is the identity on behaviour for any decay rate."""
    classifier, dataset = _decayed_midstream_forest(size=150, decay_rate=decay_rate, seed=seed)
    path = tmp_path_factory.mktemp("prop") / "forest.npz"
    save_forest(classifier, path)
    restored = load_forest(path)
    queries = dataset.features[-25:]
    assert _trace(restored, queries, max_nodes=12) == _trace(classifier, queries, max_nodes=12)
    batch_a = classifier.classify_anytime_batch(queries, max_nodes=12)
    batch_b = restored.classify_anytime_batch(queries, max_nodes=12)
    assert classification_trace_hash(batch_a) == classification_trace_hash(batch_b)


def test_expired_empty_class_survives_roundtrip(tmp_path):
    """A class whose kernels all expired is kept (recurrence) and restored."""
    config = BayesTreeConfig(decay_rate=0.5, expiry_threshold=1e-2)
    classifier = AnytimeBayesClassifier(config=config)
    rng = np.random.default_rng(0)
    for _ in range(20):
        classifier.partial_fit(rng.normal(size=2), "ephemeral", timestamp=0.0)
    for i in range(40):
        classifier.partial_fit(rng.normal(size=2) + 4.0, "steady", timestamp=190.0 + i * 0.25)
    classifier.advance_time(200.0)
    assert classifier.trees["ephemeral"].n_objects == 0  # expired away
    path = tmp_path / "forest.npz"
    save_forest(classifier, path)
    restored = load_forest(path)
    assert set(restored.trees) == {"ephemeral", "steady"}
    assert restored.trees["ephemeral"].n_objects == 0
    queries = rng.normal(size=(10, 2)) + 4.0
    assert restored.predict_batch(queries) == classifier.predict_batch(queries)


def test_label_types_roundtrip_exactly(tmp_path):
    rng = np.random.default_rng(1)
    classifier = AnytimeBayesClassifier()
    labels = [np.int64(3), "seven", (1, "a"), True]
    for label in labels:
        for _ in range(6):
            classifier.partial_fit(rng.normal(size=3) + hash(label) % 5, label)
    path = tmp_path / "forest.npz"
    save_forest(classifier, path)
    restored = load_forest(path)
    assert list(restored.trees.keys()) == list(classifier.trees.keys())
    for ours, theirs in zip(classifier.trees.keys(), restored.trees.keys()):
        assert type(ours) is type(theirs)
        assert repr(ours) == repr(theirs)
    queries = rng.normal(size=(12, 3))
    assert restored.predict_batch(queries) == classifier.predict_batch(queries)


def test_unfitted_and_unserializable_are_rejected(tmp_path):
    with pytest.raises(SnapshotError, match="unfitted"):
        save_forest(AnytimeBayesClassifier(), tmp_path / "nope.npz")
    classifier = AnytimeBayesClassifier()
    rng = np.random.default_rng(2)
    for _ in range(6):
        classifier.partial_fit(rng.normal(size=2), object())  # unhashable-ish label type
    with pytest.raises(SnapshotError, match="without pickle"):
        save_forest(classifier, tmp_path / "nope.npz")


def test_garbage_and_truncated_files_are_rejected(tmp_path):
    garbage = tmp_path / "garbage.npz"
    garbage.write_bytes(b"this is not a snapshot at all")
    with pytest.raises(SnapshotError):
        load_forest(garbage)
    with pytest.raises(SnapshotError):
        read_manifest(garbage)

    classifier, _ = _decayed_midstream_forest(size=120)
    path = tmp_path / "forest.npz"
    save_forest(classifier, path)
    truncated = tmp_path / "truncated.npz"
    truncated.write_bytes(path.read_bytes()[: path.stat().st_size // 3])
    with pytest.raises(SnapshotError):
        load_forest(truncated)

    # A valid zip that is not a forest snapshot (no manifest member).
    alien = tmp_path / "alien.npz"
    np.savez(alien.open("wb"), something=np.arange(3))
    with pytest.raises(SnapshotError, match="manifest"):
        load_forest(alien)


def _rewrite_manifest(source, target, mutate):
    """Copy a snapshot, applying ``mutate`` to its decoded manifest dict."""
    with np.load(source, allow_pickle=False) as data:
        arrays = {name: data[name] for name in data.files}
    manifest = json.loads(bytes(arrays["manifest"]).decode("utf-8"))
    mutate(manifest)
    arrays["manifest"] = np.frombuffer(json.dumps(manifest).encode("utf-8"), dtype=np.uint8)
    with open(target, "wb") as handle:
        np.savez_compressed(handle, **arrays)


def test_version_and_magic_mismatch_are_rejected(tmp_path):
    classifier, _ = _decayed_midstream_forest(size=120)
    path = tmp_path / "forest.npz"
    save_forest(classifier, path)

    future = tmp_path / "future.npz"
    _rewrite_manifest(path, future, lambda m: m.update(format_version=FORMAT_VERSION + 1))
    with pytest.raises(SnapshotVersionError, match="format version"):
        load_forest(future)
    with pytest.raises(SnapshotVersionError):
        read_manifest(future)

    impostor = tmp_path / "impostor.npz"
    _rewrite_manifest(path, impostor, lambda m: m.update(magic="other-format"))
    with pytest.raises(SnapshotError, match="magic"):
        load_forest(impostor)
    assert zipfile.is_zipfile(impostor)  # rejected for content, not for corruption

    # Right magic and version but missing required fields: still a typed
    # error, never a raw KeyError (the serving front-end catches SnapshotError).
    gutted = tmp_path / "gutted.npz"
    _rewrite_manifest(path, gutted, lambda m: m.pop("classes"))
    with pytest.raises(SnapshotError):
        read_manifest(gutted)
    with pytest.raises(SnapshotError):
        load_forest(gutted)


def test_read_manifest_reports_forest_shape(tmp_path):
    classifier, dataset = _decayed_midstream_forest(size=140)
    path = tmp_path / "forest.npz"
    save_forest(classifier, path)
    manifest = read_manifest(path)
    assert manifest["format_version"] == FORMAT_VERSION
    assert manifest["dimension"] == dataset.n_features
    assert sorted(manifest["classes"], key=repr) == sorted(classifier.trees, key=repr)
    assert manifest["class_counts"] == [
        tree.n_objects for tree in classifier.trees.values()
    ]
    assert manifest["config"]["decay_rate"] == classifier.config.decay_rate


def test_config_dict_roundtrip_is_exact():
    config = BayesTreeConfig(
        kernel="epanechnikov",
        bandwidth_scale=0.7300000000000001,
        decay_rate=0.014999999999999999,
        expiry_threshold=1e-3,
    )
    assert BayesTreeConfig.from_dict(config.to_dict()) == config
    # Through an actual JSON round-trip too (repr-exact floats).
    assert BayesTreeConfig.from_dict(json.loads(json.dumps(config.to_dict()))) == config


def test_single_tree_state_roundtrip_preserves_buffer_order():
    rng = np.random.default_rng(5)
    tree = BayesTree(dimension=2, config=BayesTreeConfig(decay_rate=0.03))
    for i in range(80):
        tree.insert(rng.normal(size=2), timestamp=float(i))
    restored = BayesTree.from_state(tree.export_state(), config=tree.config)
    restored.validate()
    for ours, theirs in zip(tree.leaf_arrays(), restored.leaf_arrays()):
        np.testing.assert_array_equal(np.asarray(ours), np.asarray(theirs))
    queries = rng.normal(size=(15, 2))
    np.testing.assert_array_equal(
        tree.log_density_batch(queries), restored.log_density_batch(queries)
    )
    # Future inserts take identical paths through identical topology.
    for i in range(20):
        point = rng.normal(size=2)
        tree.insert(point, timestamp=90.0 + i)
        restored.insert(point, timestamp=90.0 + i)
    np.testing.assert_array_equal(
        tree.log_density_batch(queries), restored.log_density_batch(queries)
    )
