"""Flat snapshot members: mmap loading must be exact, corruption must be typed.

Format v2 carries the compiled flat-forest columns as uncompressed,
memory-mappable ``flat__*`` members next to the object-graph state.  These
tests pin the new surface: ``load_flat_forest`` (mmap and plain) serves
traces hash-identical to ``load_forest``, snapshots written without flat
members refuse the flat API with :class:`SnapshotError`, and corrupted flat
columns — truncated members, interval/length disagreement — are rejected
with :class:`SnapshotError` instead of loading garbage.
"""

import json

import numpy as np
import pytest

from repro.core import AnytimeBayesClassifier, BayesTreeConfig
from repro.data import make_dataset
from repro.evaluation import classification_trace_hash
from repro.persist import (
    SnapshotError,
    load_flat_forest,
    load_forest,
    read_flat_columns,
    read_manifest,
    save_forest,
)


def _decayed_forest(size=220, decay_rate=0.02, seed=5):
    dataset = make_dataset("pendigits", size=size, random_state=seed)
    config = BayesTreeConfig(decay_rate=decay_rate, expiry_threshold=1e-3)
    classifier = AnytimeBayesClassifier(config=config)
    for i in range(size - 40):
        classifier.partial_fit(
            dataset.features[i], dataset.labels[i], timestamp=float(i) * 0.5
        )
    classifier.advance_time((size - 40) * 0.5 + 2.0)
    return classifier, dataset.features[-30:]


def _trace(forest, queries, max_nodes=20):
    return classification_trace_hash(
        forest.classify_anytime(query, max_nodes=max_nodes) for query in queries
    )


def _rewrite(source, target, mutate_arrays):
    """Copy a snapshot, applying ``mutate_arrays`` to its raw member dict."""
    with np.load(source, allow_pickle=False) as data:
        arrays = {name: data[name] for name in data.files}
    mutate_arrays(arrays)
    with open(target, "wb") as handle:
        np.savez(handle, **arrays)


def test_flat_members_load_trace_identical(tmp_path):
    classifier, queries = _decayed_forest()
    path = tmp_path / "forest.npz"
    save_forest(classifier, path)
    assert read_manifest(path)["has_flat"] is True

    reference = _trace(load_forest(path), queries)
    for mmap in (True, False):
        flat = load_flat_forest(path, mmap=mmap)
        assert _trace(flat, queries) == reference
        assert flat.predict_batch(queries) == classifier.predict_batch(queries)


def test_mmap_columns_are_read_only_views(tmp_path):
    classifier, _ = _decayed_forest(size=140)
    path = tmp_path / "forest.npz"
    save_forest(classifier, path)
    columns = read_flat_columns(path, mmap=True)
    assert columns, "expected flat columns"
    memmapped = [
        array for array in columns.values() if isinstance(array, np.memmap)
    ]
    assert memmapped, "uncompressed members should memory-map"
    for array in memmapped:
        assert not array.flags.writeable


def test_snapshot_without_flat_members_refuses_flat_api(tmp_path):
    classifier, queries = _decayed_forest(size=140)
    path = tmp_path / "legacy.npz"
    save_forest(classifier, path, include_flat=False)
    manifest = read_manifest(path)
    assert manifest["has_flat"] is False
    # The object-graph path is untouched...
    assert load_forest(path).predict_batch(queries) == classifier.predict_batch(queries)
    # ...while the flat API fails loudly instead of inventing columns.
    with pytest.raises(SnapshotError, match="flat"):
        read_flat_columns(path)
    with pytest.raises(SnapshotError, match="flat"):
        load_flat_forest(path)


def test_truncated_flat_member_is_rejected(tmp_path):
    classifier, _ = _decayed_forest(size=140)
    path = tmp_path / "forest.npz"
    save_forest(classifier, path)

    def truncate(arrays):
        name = next(n for n in arrays if n.endswith("__entry_means"))
        arrays[name] = arrays[name][:-1]

    broken = tmp_path / "truncated_member.npz"
    _rewrite(path, broken, truncate)
    with pytest.raises(SnapshotError):
        load_flat_forest(broken)
    # The object-graph members are intact; only the flat surface is poisoned.
    assert load_forest(broken).is_fitted


def test_interval_column_disagreement_is_rejected(tmp_path):
    classifier, _ = _decayed_forest(size=140)
    path = tmp_path / "forest.npz"
    save_forest(classifier, path)

    def tear_intervals(arrays):
        name = next(n for n in arrays if n.endswith("t0__post"))
        post = np.array(arrays[name], copy=True)
        post[post >= 0] += 3
        arrays[name] = post

    torn = tmp_path / "torn_intervals.npz"
    _rewrite(path, torn, tear_intervals)
    with pytest.raises(SnapshotError):
        load_flat_forest(torn)


def test_missing_flat_member_is_rejected(tmp_path):
    classifier, _ = _decayed_forest(size=140)
    path = tmp_path / "forest.npz"
    save_forest(classifier, path)

    def drop_priors(arrays):
        del arrays["flat__forest__log_priors"]

    gutted = tmp_path / "gutted_flat.npz"
    _rewrite(path, gutted, drop_priors)
    with pytest.raises(SnapshotError, match="log_priors"):
        load_flat_forest(gutted)


def test_flat_and_manifest_stay_aligned_after_continued_stream(tmp_path):
    classifier, queries = _decayed_forest()
    dataset = make_dataset("pendigits", size=300, random_state=11)
    for i in range(60):
        classifier.partial_fit(
            dataset.features[i], dataset.labels[i], timestamp=200.0 + float(i)
        )
    path = tmp_path / "evolved.npz"
    save_forest(classifier, path)
    manifest = read_manifest(path)
    flat = load_flat_forest(path)
    assert flat.labels == manifest["classes"]
    assert [flat.trees[label].n_objects for label in flat.labels] == manifest[
        "class_counts"
    ]
    assert _trace(flat, queries) == _trace(classifier, queries)
