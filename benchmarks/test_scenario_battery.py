"""Scenario battery bench: the smoke subset the regression gate anchors on.

Runs exactly the battery configuration ``collect_bench.py`` uses for the
``scenario_*`` headline metrics (smoke scenarios, size scale 0.25) and prints
the per-scenario win/loss table, so the numbers behind the regression gate
are visible in the CI log.  Asserts the qualitative properties the gate
relies on: the forest wins a solid majority of (scenario, budget) cells, its
high-dimensional curve is finite and strong, and the run is deterministic.
"""

import json

from conftest import print_heading, run_once

from repro.evaluation import BUDGET_GRID, CLASSIFIER_KINDS, format_win_loss_table, run_scenario_battery
from repro.scenarios import SMOKE_SCENARIOS


def test_scenario_battery_smoke(benchmark):
    result = run_once(benchmark, run_scenario_battery, SMOKE_SCENARIOS, 0.25)

    print_heading("Scenario battery — smoke subset (regression-gate anchor)")
    print(format_win_loss_table(result))

    assert [o.scenario for o in result.outcomes] == list(SMOKE_SCENARIOS)
    for outcome in result.outcomes:
        assert sorted(outcome.curves.keys()) == sorted(CLASSIFIER_KINDS)
        for curve in outcome.curves.values():
            assert [budget for budget, _ in curve] == list(BUDGET_GRID)
            assert all(0.0 <= acc <= 1.0 for _, acc in curve)

    # The headline metrics collected by collect_bench.py:
    assert result.forest_win_rate >= 0.7
    assert result.outcome("highdim_kernels").forest_auc >= 0.9
    assert result.outcome("adversarial_bursts").prequential["bayes_forest"] >= 0.9

    # The whole result must serialise — the report generator depends on it.
    payload = json.dumps(result.to_dict())
    assert "highdim_kernels" in payload
