"""Extension A4 — anytime clustering (paper §4.2).

The paper's future-work section describes extending the Bayes tree to anytime
clustering: insertion objects descend as far as the stream speed permits and
are parked in inner-node buffers otherwise, cluster features decay
exponentially to track evolving distributions, and a density-based offline
component extracts the final clustering.  This bench measures clustering
quality as a function of the anytime insertion budget and verifies the
self-adaptation and drift-tracking properties.
"""

import numpy as np
from conftest import print_heading, run_once

from repro.clustering import (
    ClusTree,
    assign_to_macro_clusters,
    clustering_purity,
    density_cluster,
)
from repro.data import make_blobs, make_drift_stream

HOP_BUDGETS = (0, 1, 2, None)  # None = unlimited descent (slow stream)


def run_clustering_experiment():
    centers = np.array([[0.0, 0.0], [12.0, 0.0], [6.0, 10.0], [-6.0, 10.0]])
    dataset = make_blobs(n_classes=4, per_class=200, n_features=2, random_state=5, centers=centers)
    rng = np.random.default_rng(5)
    order = rng.permutation(dataset.size)

    per_budget = {}
    for budget in HOP_BUDGETS:
        tree = ClusTree(dimension=2, fanout=4, decay_rate=0.0)
        for t, index in enumerate(order):
            tree.insert(dataset.features[index], timestamp=float(t), max_hops=budget)
        micro = tree.micro_clusters(min_weight=1.0)
        macro = density_cluster(micro, epsilon=5.0, min_weight=20.0)
        assignments = assign_to_macro_clusters(dataset.features[order], macro)
        per_budget[budget] = {
            "micro": len(micro),
            "macro": len(macro),
            "purity": clustering_purity(assignments, dataset.labels[order]),
            "parked": tree.n_parked,
            "weight": tree.total_weight(),
        }

    # Drift tracking with exponential decay.
    stream = make_drift_stream(size=1200, n_classes=2, n_features=2, drift_speed=0.03, random_state=6)
    drift = {}
    for label, decay in (("no decay", 0.0), ("decay", 0.05)):
        tree = ClusTree(dimension=2, fanout=4, decay_rate=decay)
        for t in range(stream.size):
            tree.insert(stream.features[t], timestamp=float(t))
        micro = tree.micro_clusters(min_weight=0.5)
        centers_arr = np.array([m.mean for m in micro])
        weights = np.array([m.weight for m in micro])
        model_center = (weights[:, None] * centers_arr).sum(axis=0) / weights.sum()
        recent_center = stream.features[-150:].mean(axis=0)
        drift[label] = float(np.linalg.norm(model_center - recent_center))
    return per_budget, drift


def test_ext_anytime_clustering(benchmark):
    per_budget, drift = run_once(benchmark, run_clustering_experiment)

    print_heading("Extension A4 — anytime clustering quality vs. stream speed")
    print(f"{'hop budget':>12s}{'micro':>8s}{'macro':>8s}{'purity':>9s}{'parked':>9s}{'weight':>10s}")
    for budget, stats in per_budget.items():
        label = "unlimited" if budget is None else str(budget)
        print(
            f"{label:>12s}{stats['micro']:>8d}{stats['macro']:>8d}"
            f"{stats['purity']:>9.3f}{stats['parked']:>9d}{stats['weight']:>10.1f}"
        )
    print("\ndistance of the cluster model to the current concept under drift:")
    for label, value in drift.items():
        print(f"  {label:10s}: {value:.2f}")

    unlimited = per_budget[None]
    fast = per_budget[1]
    # No objects are lost regardless of the budget (parked objects stay in the model).
    for stats in per_budget.values():
        np.testing.assert_allclose(stats["weight"], 800.0, rtol=1e-6)
    # The offline component recovers the four ground-truth clusters with high purity
    # when time permits a full descent.
    assert unlimited["macro"] == 4
    assert unlimited["purity"] > 0.95
    # Self-adaptation: a faster stream (smaller budget) yields a coarser model
    # and parks objects in buffers.
    assert fast["micro"] <= unlimited["micro"]
    assert fast["parked"] > 0
    assert per_budget[0]["parked"] >= fast["parked"]
    # Even the fastest stream keeps a usable clustering.
    assert fast["purity"] > 0.9
    # Exponential decay keeps the model close to the current (drifted) concept.
    assert drift["decay"] < drift["no decay"]
