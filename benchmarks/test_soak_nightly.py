"""Nightly soak: long drift-stream learning plus sustained serving load.

These tests are deliberately long (minutes, not seconds) and therefore do not
run in PR CI: they are gated behind ``RUN_SOAK=1`` and executed by the
scheduled nightly workflow (`.github/workflows/nightly.yml`) with relaxed
timeouts.  They exist to surface *slow* degradations — memory creep past the
decay horizon, accuracy rot on long evolving streams, serving instability
over thousands of dispatch rounds and repeated hot swaps — that a minutes-long
PR pipeline structurally cannot see.
"""

from __future__ import annotations

import os

import pytest

from repro.core import AnytimeBayesClassifier, BayesTreeConfig
from repro.data import make_dataset, make_drift_stream
from repro.persist import load_forest, save_forest
from repro.serving import ServingEngine
from repro.stream import DataStream, run_anytime_stream

pytestmark = pytest.mark.skipif(
    not os.environ.get("RUN_SOAK"),
    reason="soak tests only run in the scheduled nightly workflow (set RUN_SOAK=1)",
)

#: Decay configuration of the soak forest; horizon = log2(1/1e-3)/0.02 ≈ 500
#: time units, i.e. the forest should never retain much more than ~1.5
#: horizons of arrivals regardless of stream length.
SOAK_CONFIG = BayesTreeConfig(decay_rate=0.02, expiry_threshold=1e-3)


def test_long_drift_stream_stays_accurate_and_bounded():
    """20k-object evolving stream: accuracy recovers, memory stays bounded."""
    size = 20_000
    dataset = make_drift_stream(
        size=size, n_classes=4, n_features=4, drift="sudden", n_segments=5, random_state=7
    )
    warmup = 200
    classifier = AnytimeBayesClassifier(config=SOAK_CONFIG)
    for i in range(warmup):
        classifier.partial_fit(dataset.features[i], dataset.labels[i], timestamp=0.0)
    tail = type(dataset)(
        dataset.name, dataset.features[warmup:], dataset.labels[warmup:], dataset.n_classes
    )
    stream = DataStream(tail, shuffle=False, random_state=1)
    result = run_anytime_stream(classifier, stream, online_learning=True, chunk_size=64)

    stored = sum(tree.n_objects for tree in classifier.trees.values())
    horizon = classifier.trees[next(iter(classifier.trees))].clock.horizon(
        SOAK_CONFIG.expiry_threshold
    )
    # The stream advances one time unit per arrival, so 2 horizons of
    # arrivals is a hard ceiling for the post-expiry working set.
    assert stored <= 2.0 * horizon, (
        f"forest retains {stored} kernels; expiry should bound it near "
        f"1.5x the {horizon:.0f}-arrival horizon"
    )
    window = result.sliding_window_accuracy(500)
    assert float(window[-1]) > 0.5, "decayed forest failed to track the final concept"
    assert result.accuracy > 0.4


def test_sustained_serving_with_periodic_hot_swaps(tmp_path):
    """Hours-compressed serving soak: thousands of rounds, repeated swaps."""
    dataset = make_dataset("pendigits", size=3000, random_state=0)
    classifier = AnytimeBayesClassifier(config=SOAK_CONFIG)
    for i in range(1500):
        classifier.partial_fit(dataset.features[i], dataset.labels[i], timestamp=float(i) * 0.05)
    snapshot = tmp_path / "soak.npz"
    save_forest(classifier, snapshot)
    # Serving load straight from the stream layer: the held-out tail replayed
    # as stream-ordered 256-query blocks (the serving front-end's view).
    tail = type(dataset)(
        dataset.name, dataset.features[1500:], dataset.labels[1500:], dataset.n_classes
    )
    blocks = list(DataStream(tail, shuffle=False).query_batches(256, limit=1024))
    queries = blocks[0]

    rounds = int(os.environ.get("SOAK_SERVING_ROUNDS", "600"))
    swap_every = 100
    trained_until = 1500
    workers = min(4, os.cpu_count() or 1)
    with ServingEngine(snapshot, workers=workers) as engine:
        for round_index in range(rounds):
            engine.predict_batch(blocks[round_index % len(blocks)])
            if (round_index + 1) % swap_every == 0:
                # Background training between swaps, then roll the new model
                # out without dropping a request.
                for i in range(trained_until, min(trained_until + 50, 3000)):
                    classifier.partial_fit(
                        dataset.features[i], dataset.labels[i], timestamp=75.0 + float(i) * 0.05
                    )
                trained_until = min(trained_until + 50, 3000)
                save_forest(classifier, snapshot)
                engine.swap_snapshot(snapshot)
        assert engine.stats.batches >= rounds
        assert engine.stats.swaps == rounds // swap_every
        # After the last swap the engine must agree with an in-process
        # restore of the same snapshot, bit for bit.
        assert engine.predict_batch(queries) == load_forest(snapshot).predict_batch(queries)
