"""Flat-forest serving benchmark: descent speedup and zero-copy warm start.

Prints the ISSUE 6 acceptance numbers — flat-column vs object-graph anytime
descent timing (with the trace-identity pin), and the 4-worker zero-copy vs
per-worker-loading comparison of warm-start latency and private RSS — and
asserts the qualitative claims that hold on any machine: traces are
hash-identical, zero-copy warm start beats a full snapshot restore, and the
shared segment is a single physical copy (per-worker private RSS does not
grow with the forest).  Absolute milliseconds are left to the regression
gate (``collect_bench.py`` + ``min_cores``), which runs on known hardware.
"""

from __future__ import annotations

import pytest

from serving_load import (
    build_serving_snapshot,
    run_flat_descent_comparison,
    run_warm_start_comparison,
)

from conftest import print_heading, run_once

#: Workers used for the warm-start comparison (processes, not cores — the
#: comparison is attach-vs-restore latency, valid on any core count).
WARM_START_WORKERS = 4


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    path = tmp_path_factory.mktemp("flat_serving") / "forest.npz"
    queries = build_serving_snapshot(path, train_size=1600, query_size=256, random_state=0)
    return path, queries


def test_flat_descent_is_trace_identical_and_not_slower(snapshot, benchmark):
    path, queries = snapshot
    result = run_once(
        benchmark, run_flat_descent_comparison, path, queries[:128], max_nodes=20
    )
    print_heading("flat-column vs object-graph anytime descent (128 queries, budget 20)")
    print(f"  object graph : {result['object_s'] * 1e3:8.1f} ms")
    print(f"  flat columns : {result['flat_s'] * 1e3:8.1f} ms")
    print(f"  speedup      : {result['speedup']:8.2f}x")
    print(f"  trace hash   : {result['trace_hash'][:16]}… identical={result['identical']}")
    assert result["identical"], "flat descent diverged from the object graph"
    # Qualitative bar only — the regression gate tracks the actual ratio.
    assert result["speedup"] > 0.8


def test_zero_copy_warm_start_beats_object_loading(snapshot, benchmark):
    path, queries = snapshot
    result = run_once(
        benchmark, run_warm_start_comparison, path, queries, workers=WARM_START_WORKERS
    )
    flat, obj = result["zero_copy"], result["object"]
    print_heading(f"zero-copy vs object-loading workers (n={WARM_START_WORKERS})")
    print(
        f"  warm start   : {flat['warm_start_ms_mean']:8.1f} ms (attach)  vs "
        f"{obj['warm_start_ms_mean']:8.1f} ms (restore)  -> {result['warm_start_speedup']:.1f}x"
    )
    print(
        f"  private RSS  : {flat['private_kb_mean']:8.0f} kB            vs "
        f"{obj['private_kb_mean']:8.0f} kB            -> {result['private_rss_ratio']:.2f}x"
    )
    print(f"  segment      : {flat['shm_bytes']} bytes shared by {flat['n_workers']} workers")
    assert flat["n_workers"] == WARM_START_WORKERS
    assert obj["n_workers"] == WARM_START_WORKERS
    # The ISSUE 6 acceptance bar: both warm-start latency and per-worker
    # incremental memory must be *reduced* against per-worker loading.
    assert result["warm_start_speedup"] > 1.0
    assert result["private_rss_ratio"] > 1.0
