"""Tenant-churn soak for the multi-tenant :class:`~repro.serving.ModelRegistry`.

Drives a load/evict storm — many more tenants than the registry's LRU cache
holds — and measures what the registry must keep true under churn:

* **bounded memory**: resident shared-memory bytes never exceed the cache
  capacity times the largest segment, no matter how many tenants rotate
  through (asserted from ``stats_snapshot()`` every round, cross-checked
  against ``memory_profile()``'s /proc shared-RSS reading);
* **no segment leaks**: every shm segment ever created for an evicted
  tenant is actually unlinked (``segment_exists``), and closing the
  registry releases the rest;
* **tail latency and cold-load cost**: request latency percentiles over the
  churn run, with the cold-reload rounds reported separately so the
  eviction policy's cost stays visible.

A companion helper pins the acceptance contract of the v1 API redesign:
single-tenant traffic served through the registry — via the legacy alias
routes *and* the ``/v1`` tenant routes — carries exactly the PR 6
fixed-budget classification trace hash.
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import time
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from pathlib import Path

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.evaluation import classification_trace_hash, latency_percentiles  # noqa: E402
from repro.persist import load_forest  # noqa: E402
from repro.serving import (  # noqa: E402
    AsyncServingClient,
    HttpFrontend,
    ModelRegistry,
    TenantPolicy,
    memory_profile,
    segment_exists,
)


def run_tenant_churn_soak(
    snapshot_paths: "Sequence[str | Path]",
    queries: np.ndarray,
    n_tenants: int = 32,
    capacity: int = 4,
    rounds: int = 96,
    batch: int = 32,
    node_budget: Optional[int] = 8,
    random_state: int = 0,
) -> Dict[str, object]:
    """Load/evict storm: ``n_tenants`` rotating through a ``capacity``-entry cache.

    Tenants are registered lazily over the given snapshots (cycled), then a
    seeded random schedule fires ``rounds`` batches at them — every request
    to a non-resident tenant forces a cold reload and an LRU eviction.  The
    returned report carries the bounded-memory and no-leak verdicts plus
    latency/cold-load statistics; callers (CI gate, soak test) assert on the
    verdicts rather than re-deriving them.
    """
    if n_tenants <= capacity:
        raise ValueError("churn needs more tenants than cache capacity")
    rng = np.random.default_rng(random_state)
    tenants = [f"tenant-{index:02d}" for index in range(n_tenants)]
    seen_segments: Dict[str, str] = {}
    round_ms: List[float] = []
    cold_round_ms: List[float] = []
    peak_resident = 0
    max_segment = 0
    shared_kb_samples: List[float] = []

    before_profile = memory_profile()
    with ModelRegistry(capacity=capacity) as registry:
        for index, tenant in enumerate(tenants):
            registry.register(tenant, snapshot_paths[index % len(snapshot_paths)])
        for round_index in range(rounds):
            tenant = tenants[int(rng.integers(n_tenants))]
            offset = int(rng.integers(max(1, queries.shape[0] - batch)))
            block = queries[offset : offset + batch]
            was_resident = tenant in registry.resident_tenants()
            tick = time.perf_counter()
            predictions = registry.predict_batch(tenant, block, node_budget=node_budget)
            elapsed_ms = (time.perf_counter() - tick) * 1000.0
            assert len(predictions) == block.shape[0]
            round_ms.append(elapsed_ms)
            if not was_resident:
                cold_round_ms.append(elapsed_ms)
            stats = registry.stats_snapshot()
            resident_bytes = int(stats["resident_bytes"])
            peak_resident = max(peak_resident, resident_bytes)
            for name, tenant_stats in stats["tenants"].items():
                if tenant_stats.get("resident"):
                    seen_segments[str(tenant_stats["shm_name"])] = name
                    max_segment = max(max_segment, int(tenant_stats["shm_bytes"]))
            if round_index % 8 == 0:
                shared_kb_samples.append(float(memory_profile()["shared_kb"]))
        bound_bytes = capacity * max_segment
        bounded = peak_resident <= bound_bytes
        resident_now = {
            str(registry.tenant_stats(name)["shm_name"]) for name in registry.resident_tenants()
        }
        leaked = [
            name
            for name in seen_segments
            if name not in resident_now and segment_exists(name)
        ]
        final_stats = registry.stats_snapshot()
        cold_loads = [
            float(entry["cold_load_ms"])
            for entry in final_stats["tenants"].values()
            if entry.get("cold_load_ms")
        ]
    leaked_after_close = [name for name in seen_segments if segment_exists(name)]
    after_profile = memory_profile()

    percentiles = latency_percentiles(
        [ms / 1000.0 for ms in round_ms], percentiles=(50.0, 99.0)
    )
    cold_percentiles = (
        latency_percentiles([ms / 1000.0 for ms in cold_round_ms], percentiles=(50.0, 99.0))
        if cold_round_ms
        else {"p50": 0.0, "p99": 0.0}
    )
    return {
        "n_tenants": n_tenants,
        "capacity": capacity,
        "rounds": rounds,
        "batch": batch,
        "segments_created": len(seen_segments),
        "max_segment_bytes": max_segment,
        "peak_resident_bytes": peak_resident,
        "bound_bytes": bound_bytes,
        "bounded": bool(bounded),
        "leaked_segments": len(leaked),
        "leaked_after_close": len(leaked_after_close),
        "evictions": final_stats["counters"]["evictions"],
        "reloads": final_stats["counters"]["reloads"],
        "loads": final_stats["counters"]["loads"],
        "p50_ms": percentiles["p50"],
        "p99_ms": percentiles["p99"],
        "cold_rounds": len(cold_round_ms),
        "cold_p50_ms": cold_percentiles["p50"],
        "cold_p99_ms": cold_percentiles["p99"],
        "cold_load_ms_mean": float(np.mean(cold_loads)) if cold_loads else 0.0,
        "cold_load_ms_max": float(np.max(cold_loads)) if cold_loads else 0.0,
        "shared_kb_before": float(before_profile["shared_kb"]),
        "shared_kb_peak": max(shared_kb_samples) if shared_kb_samples else 0.0,
        "shared_kb_after": float(after_profile["shared_kb"]),
    }


def run_registry_trace_identity(
    snapshot_path: "str | Path",
    queries: np.ndarray,
    node_budget: int = 8,
    policy: Optional[TenantPolicy] = None,
) -> Dict[str, object]:
    """Pin single-tenant trace identity through both HTTP route families.

    Serves the same fixed-budget batch through a registry-only deployment via
    the legacy ``/classify_batch`` alias and ``/v1/tenants/default/classify_batch``,
    requires the two response payloads to be byte-identical, and compares the
    served predictions against the in-process lockstep driver whose full
    refinement trace feeds :func:`classification_trace_hash` — the same hash
    the single-tenant front-end pinned before the registry existed.  An
    optional tenant ``policy`` configures the admission layer (weight, queue
    depth, quota), so the fairness battery can require that the DRR scheduler
    leaves this byte-level contract untouched.
    """

    async def served_payloads() -> Tuple[bytes, bytes]:
        registry = ModelRegistry(capacity=2)
        try:
            registry.load("default", snapshot_path, policy=policy)
            async with AsyncServingClient(registry=registry, linger_s=0.001) as client:
                async with HttpFrontend(client) as http:
                    host, port = http.address
                    body = {"features": queries.tolist(), "node_budget": node_budget}
                    legacy = await _post_raw(host, port, "/classify_batch", body)
                    versioned = await _post_raw(
                        host, port, "/v1/tenants/default/classify_batch", body
                    )
                    return legacy, versioned
        finally:
            registry.close()

    legacy, versioned = asyncio.run(served_payloads())
    traced = load_forest(snapshot_path).classify_anytime_batch(queries, max_nodes=node_budget)
    expected = [result.final_prediction for result in traced]
    served = json.loads(legacy)["predictions"]
    identical = legacy == versioned and served == expected
    return {
        "identical": bool(identical),
        "routes_byte_identical": bool(legacy == versioned),
        "trace_hash": classification_trace_hash(traced),
        "node_budget": int(node_budget),
        "queries": int(queries.shape[0]),
    }


async def _post_raw(host: str, port: int, path: str, payload: Dict[str, object]) -> bytes:
    """POST ``payload`` as JSON, return the raw response body bytes."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"POST {path} HTTP/1.1\r\nContent-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()
        status_line = await reader.readline()
        if int(status_line.split()[1]) != 200:
            raise RuntimeError(f"unexpected status: {status_line!r}")
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value)
        return await reader.readexactly(length)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover - teardown race
            pass
