"""Figure 4 — anytime accuracy on Gender (top) and Covertype (bottom).

The paper compares EMTopDown and Hilbert bulk loading under two descent
strategies (global best "glo" and breadth-first "bft") against iterative
insertion with global best descent, using qbk with k = 2.  Findings the bench
asserts:

* bulk loading (EMTopDown in particular) is superior to iterative insertion on
  both data sets regardless of the descent strategy,
* global best descent performs at least comparably to breadth-first traversal
  (the paper: glo is better overall but oscillates),
* the anytime property holds (accuracy does not collapse with more nodes).
"""

import numpy as np
import pytest
from conftest import print_heading, run_once

from repro.evaluation import ExperimentConfig, format_curve_table, run_bulkload_experiment

CONFIGS = {
    "gender": ExperimentConfig(
        dataset="gender",
        size=1000,
        max_nodes=80,
        n_folds=4,
        strategies=("em_topdown", "hilbert", "iterative"),
        descents=("glo", "bft"),
        qbk_k=2,
        max_test_objects=30,
        random_state=0,
    ),
    "covertype": ExperimentConfig(
        dataset="covertype",
        size=1100,
        max_nodes=80,
        n_folds=4,
        strategies=("em_topdown", "hilbert", "iterative"),
        descents=("glo", "bft"),
        qbk_k=2,
        max_test_objects=30,
        random_state=0,
    ),
}


@pytest.mark.parametrize("dataset", ["gender", "covertype"])
def test_fig4_bulkload_and_descent(benchmark, dataset):
    config = CONFIGS[dataset]
    result = run_once(benchmark, run_bulkload_experiment, config)

    print_heading(f"Figure 4 — anytime accuracy on {dataset} (qbk k=2, glo vs bft)")
    print(format_curve_table(result, nodes=(0, 5, 10, 20, 40, 60, 80)))

    curves = {key: curve.mean_curve for key, curve in result.curves.items()}
    means = {key: curve.mean() for key, curve in curves.items()}

    for key, curve in curves.items():
        assert curve.shape == (config.max_nodes + 1,)
        assert np.all((0.0 <= curve) & (curve <= 1.0)), key

    # Bulk loading beats iterative insertion: EMTopDown with global best descent
    # is at least as good as iterative insertion with global best descent (up to
    # noise), and its coarse root model is strictly better.
    assert means[("em_topdown", "glo")] >= means[("iterative", "glo")] - 0.015
    assert curves[("em_topdown", "glo")][0] >= curves[("iterative", "glo")][0]

    # The superiority of bulk loading holds for the breadth-first traversal too.
    assert means[("em_topdown", "bft")] >= means[("iterative", "glo")] - 0.01

    # Global best descent is comparable to or better than breadth first
    # (the paper reports glo > bft overall, with oscillation under glo).
    for strategy in ("em_topdown", "hilbert"):
        assert means[(strategy, "glo")] >= means[(strategy, "bft")] - 0.03

    # Anytime property: no strategy collapses with more node reads.  (The
    # EMTopDown curve on the scaled-down covertype stand-in declines by a few
    # points because its coarse EM root model is already stronger than the
    # small-sample kernel model it refines towards — see EXPERIMENTS.md.)
    for key, curve in curves.items():
        assert curve[-1] >= curve[0] - 0.07, key
    # The packing/insertion-based trees improve with more node reads.
    for strategy in ("hilbert", "iterative"):
        assert curves[(strategy, "glo")][-1] >= curves[(strategy, "glo")][0]
