#!/usr/bin/env python
"""Benchmark-regression gate: fail if any metric regressed beyond tolerance.

Usage::

    python benchmarks/check_regression.py benchmarks/baseline.json BENCH_pr3.json \
        --tolerance 0.25

For each metric in the baseline, the candidate value must not be worse than
``tolerance`` (relative): higher-is-better metrics may not drop below
``baseline * (1 - tolerance)``, lower-is-better metrics may not exceed
``baseline * (1 + tolerance)``.  A baseline metric may carry its own
``"tolerance"`` field overriding the default for that metric (used for the
wall-clock metric, whose calibration-normalised value still jitters ~20% on
shared runners — the override is set wide enough to pass on noise yet still
catch the order-of-magnitude regressions the gate exists for).  A baseline
metric may also carry ``"min_cores"``: hosts with fewer cores skip it (e.g.
multi-worker serving speedups cannot exist on a single-core machine).  A
metric missing from the candidate is a failure (a silently dropped benchmark
must not pass the gate); metrics only present in the candidate are reported
but do not fail.
"""

from __future__ import annotations

from typing import Optional, Sequence

import argparse
import json
import sys
from pathlib import Path


def check(baseline: dict, candidate: dict, tolerance: float, min_tolerance: float = 0.0) -> int:
    failures = 0
    base_metrics = baseline["metrics"]
    cand_metrics = candidate.get("metrics", {})
    cand_cores = int(candidate.get("cpu_count") or 1)
    width = max(len(name) for name in base_metrics)
    print(f"{'metric':{width}s} {'baseline':>12s} {'candidate':>12s} {'limit':>12s}  status")
    for name, base in base_metrics.items():
        direction = base.get("direction", "higher")
        base_value = float(base["value"])
        min_cores = int(base.get("min_cores", 1))
        if cand_cores < min_cores:
            # Scaling metrics (e.g. the 4-worker serving speedup) are
            # physically meaningless below their core floor; skipping keeps
            # the gate honest on small machines while CI (>= min_cores)
            # still enforces them.
            print(
                f"{name:{width}s} {base_value:12.4f} {'SKIP':>12s} {'':>12s}  "
                f"skipped (needs >= {min_cores} cores, host has {cand_cores})"
            )
            continue
        cand = cand_metrics.get(name)
        if cand is None:
            print(f"{name:{width}s} {base_value:12.4f} {'MISSING':>12s} {'':>12s}  FAIL")
            failures += 1
            continue
        cand_value = float(cand["value"])
        metric_tolerance = max(float(base.get("tolerance", tolerance)), min_tolerance)
        if direction == "lower":
            limit = base_value * (1.0 + metric_tolerance)
            ok = cand_value <= limit
        else:
            limit = base_value * (1.0 - metric_tolerance)
            ok = cand_value >= limit
        status = "ok" if ok else "FAIL"
        print(f"{name:{width}s} {base_value:12.4f} {cand_value:12.4f} {limit:12.4f}  {status}")
        if not ok:
            failures += 1
    for name in cand_metrics:
        if name not in base_metrics:
            print(f"{name:{width}s} (new metric, not gated: {cand_metrics[name]['value']:.4f})")
    return failures


def main(argv: "Optional[Sequence[str]]" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("candidate", help="freshly collected JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed relative regression per metric (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--min-tolerance",
        type=float,
        default=0.0,
        help=(
            "floor applied on top of per-metric tolerance overrides; relaxed "
            "gates (nightly) use this, since a plain --tolerance is shadowed "
            "by the baseline's own per-metric 'tolerance' fields"
        ),
    )
    args = parser.parse_args(argv)
    baseline = json.loads(Path(args.baseline).read_text())
    candidate = json.loads(Path(args.candidate).read_text())
    if baseline.get("schema") != candidate.get("schema"):
        print(
            f"schema mismatch: baseline {baseline.get('schema')} vs "
            f"candidate {candidate.get('schema')}",
            file=sys.stderr,
        )
        return 2
    failures = check(baseline, candidate, args.tolerance, args.min_tolerance)
    if failures:
        print(f"\n{failures} metric(s) regressed beyond tolerance", file=sys.stderr)
        return 1
    print(f"\nall metrics within tolerance (default {args.tolerance:.0%}) of the baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
