"""Two-tenant starvation battery: the fairness acceptance gate.

The PR-CI sized run drives the hot tenant at 50x the background tenant's
offered load through the shared DRR admission layer and asserts the
acceptance criteria directly: the background tenant keeps completing
(>= 0.9 of its requests served) and its p99 stays within 3x its solo
baseline, while the hot tenant's overload surfaces as bounded backlog plus
``queue_full`` rejections.  A byte-identity run pins that the scheduler and
per-tenant policies leave the fixed-budget single-tenant trace contract
untouched through both HTTP route families.  The nightly soak
(``RUN_SOAK=1``) scales the same driver to a multi-second starvation storm.
"""

from __future__ import annotations

import os

import pytest

from conftest import print_heading, run_once
from serving_load import build_labelled_tail, build_serving_snapshot
from tenant_churn import run_registry_trace_identity
from tenant_fairness import run_two_tenant_starvation

from repro.serving import TenantPolicy


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    root = tmp_path_factory.mktemp("tenant-fairness")
    snapshot = root / "forest.npz"
    queries = build_serving_snapshot(snapshot, train_size=800, query_size=128, random_state=0)
    tail = build_labelled_tail(train_size=800, tail_size=160, random_state=0)
    return snapshot, queries, tail


def _assert_fairness_invariants(report):
    assert report["background_completion"] >= 0.9, (
        f"background tenant starved: completion "
        f"{report['background_completion']:.3f} < 0.9 "
        f"(rejection mix {report['background_rejection_mix']})"
    )
    assert report["p99_ratio"] <= 3.0, (
        f"background p99 {report['contended_p99_ms']:.1f} ms is "
        f"{report['p99_ratio']:.2f}x its solo baseline {report['solo_p99_ms']:.1f} ms (> 3x)"
    )
    # The hot tenant really was overloaded: its capped queue forced
    # rejections instead of letting it monopolise the shared pending budget.
    assert report["hot_rejection_mix"].get("rejected", 0.0) > 0.0, (
        "hot tenant was never rejected: the run did not saturate admission"
    )
    tenants = report["admission"]["tenants"]
    assert tenants["background"]["granted"] > 0
    assert tenants["hot"]["rejected_queue_full"] > 0


def test_background_tenant_survives_hot_tenant_storm(benchmark, workload):
    snapshot, _, tail = workload
    report = run_once(
        benchmark,
        run_two_tenant_starvation,
        snapshot,
        tail,
        background_speed=40.0,
        hot_multiplier=50.0,
        background_limit=96,
    )
    print_heading("two-tenant starvation (hot at 50x background offered load)")
    for key in (
        "background_completion",
        "solo_p99_ms",
        "contended_p99_ms",
        "p99_ratio",
        "deadline_ms",
        "background_rejection_mix",
        "hot_rejection_mix",
    ):
        print(f"  {key:26s} {report[key]}")
    _assert_fairness_invariants(report)


def test_trace_identity_survives_admission_policies(benchmark, workload):
    """Non-default weight/quota policies must not perturb served bytes."""
    snapshot, queries, _ = workload
    report = run_once(
        benchmark,
        run_registry_trace_identity,
        snapshot,
        queries[:48],
        node_budget=8,
        policy=TenantPolicy(weight=3.0, max_queue_depth=256, requests_per_sec=10_000.0),
    )
    print_heading("trace identity under admission policies (legacy vs /v1, budget 8)")
    print(f"  trace_hash {report['trace_hash']}")
    assert report["routes_byte_identical"], "legacy and /v1 payloads diverged"
    assert report["identical"], "admission policies perturbed the lockstep trace"


@pytest.mark.skipif(
    not os.environ.get("RUN_SOAK"),
    reason="starvation storm only runs in the scheduled nightly workflow (set RUN_SOAK=1)",
)
def test_starvation_storm_nightly(benchmark, workload):
    """The long version: the same 50x storm sustained over a bigger stream."""
    snapshot, _, tail = workload
    background_limit = int(os.environ.get("SOAK_FAIRNESS_REQUESTS", "240"))
    report = run_once(
        benchmark,
        run_two_tenant_starvation,
        snapshot,
        tail,
        background_speed=40.0,
        hot_multiplier=50.0,
        background_limit=background_limit,
    )
    print_heading(f"starvation storm ({background_limit} background requests, hot at 50x)")
    for key, value in report.items():
        if key not in ("solo", "contended", "hot", "admission"):
            print(f"  {key:26s} {value}")
    _assert_fairness_invariants(report)
    # A storm this long must keep the hot tenant saturated throughout.
    assert report["hot"]["requests"] >= background_limit * 40
