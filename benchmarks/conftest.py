"""Shared helpers for the benchmark harness.

Every file under ``benchmarks/`` regenerates one table or figure of the paper
(see DESIGN.md, experiment index).  The benches print the same series the
paper plots and assert the *qualitative* orderings — absolute numbers are not
expected to match the paper because the data sets are synthetic stand-ins
(DESIGN.md, substitutions).

All benches run under ``pytest benchmarks/ --benchmark-only``; the heavy
experiment of each bench is executed exactly once inside the ``benchmark``
fixture (``pedantic`` with one round) so pytest-benchmark records its runtime
without repeating it.
"""

from __future__ import annotations

import os
import sys
from typing import Any

# Make the src/ layout importable when the package is not installed.
_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def run_once(benchmark: Any, function: Any, *args: Any, **kwargs: Any) -> Any:
    """Run ``function`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


def print_heading(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)
