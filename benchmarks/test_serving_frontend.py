"""Async front-end benchmark: closed/open-loop load and adaptive budgets.

Three claims are pinned (ISSUE 5 acceptance):

* **Trace identity.**  At a fixed per-query budget the async front-end's
  predictions equal ``ServingEngine.predict_batch`` and carry exactly the
  refinement trace hashed by ``classification_trace_hash`` — micro-batching
  must not change a single prediction.
* **Closed-loop overhead.**  Waves of ``classify_batch`` through the
  event-loop micro-batcher sustain a throughput comparable to the direct
  engine call (the front-end adds coalescing, not a second serving path);
  p50/p99 per-wave latencies are printed for the log.
* **Adaptive budgets realise the anytime curve as a serving policy.**  The
  same open-loop Poisson replay at a low arrival rate earns a strictly
  deeper mean refinement (granted node budget) than under burst load.

Everything runs on the ``workers=0`` in-process engine so the numbers are
about the front-end, not about multiprocess scaling (that is
``test_serving_throughput.py``), and stay meaningful on single-core hosts.
"""

from __future__ import annotations

import pytest

from serving_load import (
    build_labelled_tail,
    build_serving_snapshot,
    run_frontend_closed_loop,
    run_frontend_open_loop,
    run_frontend_trace_identity,
    run_serving_load,
)

from conftest import print_heading, run_once

#: Open-loop arrival speeds (requests/second) probed by the tradeoff bench.
SLOW_SPEED = 40.0
BURST_SPEED = 4000.0

#: Closed-loop front-end throughput floor relative to the direct engine call.
#: The micro-batcher adds event-loop scheduling and a thread handoff per
#: round; it must never cost an order of magnitude.
MIN_RELATIVE_THROUGHPUT = 0.25


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    path = tmp_path_factory.mktemp("frontend-bench") / "forest.npz"
    queries = build_serving_snapshot(path, train_size=1600, query_size=256, random_state=0)
    return path, queries


def test_frontend_fixed_budget_is_trace_identical(snapshot):
    path, queries = snapshot
    report = run_frontend_trace_identity(path, queries[:96], node_budget=8)
    print_heading("async front-end fixed-budget trace identity")
    print(f"queries: {report['queries']}  budget: {report['node_budget']}")
    print(f"classification_trace_hash: {report['trace_hash']}")
    print(f"identical across frontend / engine / lockstep driver: {report['identical']}")
    assert report["identical"], "async front-end changed fixed-budget predictions"


def test_frontend_closed_loop_throughput(snapshot, benchmark):
    path, queries = snapshot

    def measure():
        direct = run_serving_load(path, workers=0, queries=queries, batches=6, warmup=1)
        frontend = run_frontend_closed_loop(path, queries, batches=6, warmup=1)
        return direct, frontend

    direct, frontend = run_once(benchmark, measure)

    print_heading("closed-loop async front-end vs direct engine (256-query waves)")
    print(f"{'path':>10s} {'qps':>10s} {'p50 ms':>9s} {'p99 ms':>9s}")
    print(
        f"{'direct':>10s} {direct['qps']:10.0f} {direct['p50_ms']:9.2f} {direct['p99_ms']:9.2f}"
    )
    print(
        f"{'frontend':>10s} {frontend['qps']:10.0f} "
        f"{frontend['p50_ms']:9.2f} {frontend['p99_ms']:9.2f}"
    )
    relative = frontend["qps"] / direct["qps"]
    print(f"\nfront-end relative throughput: {relative:.2f}x (floor {MIN_RELATIVE_THROUGHPUT}x)")
    assert frontend["qps"] > 0 and frontend["p99_ms"] >= frontend["p50_ms"] > 0
    assert relative > MIN_RELATIVE_THROUGHPUT, (
        f"async front-end throughput collapsed to {relative:.2f}x of the direct engine call"
    )


def test_adaptive_budget_depth_tracks_arrival_rate(snapshot, benchmark):
    path, _ = snapshot
    tail = build_labelled_tail(train_size=1600, tail_size=200, random_state=0)

    def measure():
        slow = run_frontend_open_loop(path, tail, speed=SLOW_SPEED, limit=120)
        burst = run_frontend_open_loop(path, tail, speed=BURST_SPEED, limit=120)
        return slow, burst

    slow, burst = run_once(benchmark, measure)

    print_heading("open-loop adaptive budgets: light load vs burst (Poisson arrivals)")
    print(f"{'load':>8s} {'req/s':>8s} {'mean budget':>12s} {'accuracy':>9s} {'p99 ms':>9s}")
    for label, row, speed in (("slow", slow, SLOW_SPEED), ("burst", burst, BURST_SPEED)):
        latency = row.get("latency_ms", {}).get("p99", float("nan"))
        print(
            f"{label:>8s} {speed:8.0f} {row['mean_node_budget']:12.2f} "
            f"{row['accuracy']:9.3f} {latency:9.2f}"
        )
    assert slow["served"] > 0 and burst["served"] > 0
    assert slow["mean_node_budget"] > burst["mean_node_budget"], (
        "adaptive policy granted no deeper refinement under light load "
        f"({slow['mean_node_budget']} vs {burst['mean_node_budget']})"
    )
