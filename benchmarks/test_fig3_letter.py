"""Figure 3 — anytime classification accuracy on Letter for four bulk loads.

Same protocol as Figure 2 on the 26-class letter stand-in.  Paper findings the
bench asserts: the EM top-down bulk load yields the best accuracy, Goldberger
and iterative insertion start out on par, and the Hilbert bulk load behaves
similarly to iterative insertion.
"""

import numpy as np
from conftest import print_heading, run_once

from repro.evaluation import ExperimentConfig, format_curve_table, run_bulkload_experiment

CONFIG = ExperimentConfig(
    dataset="letter",
    size=1560,
    max_nodes=80,
    n_folds=4,
    strategies=("em_topdown", "hilbert", "goldberger", "iterative"),
    descents=("glo",),
    max_test_objects=30,
    random_state=0,
)


def test_fig3_letter_bulkload_comparison(benchmark):
    result = run_once(benchmark, run_bulkload_experiment, CONFIG)

    print_heading("Figure 3 — anytime accuracy on letter (4-fold CV, glo descent, qbk)")
    print(format_curve_table(result, nodes=(0, 5, 10, 20, 40, 60, 80)))

    curves = {strategy: result.mean_curve(strategy) for strategy, _ in result.curves}
    means = {strategy: curve.mean() for strategy, curve in curves.items()}

    for strategy, curve in curves.items():
        assert curve.shape == (CONFIG.max_nodes + 1,)
        assert np.all((0.0 <= curve) & (curve <= 1.0)), strategy

    # EM top-down is at least as good as every other strategy (up to noise) and
    # provides the best initial (coarse-model) accuracy.
    others = [means[s] for s in ("hilbert", "goldberger", "iterative")]
    assert means["em_topdown"] >= max(others) - 0.015
    assert curves["em_topdown"][0] >= max(curves[s][0] for s in ("hilbert", "goldberger", "iterative"))

    # Hilbert behaves like iterative insertion on letter (paper: "similar performance").
    assert abs(means["hilbert"] - means["iterative"]) <= 0.03

    # With 26 classes the letter problem is the hardest of the four data sets.
    assert all(mean <= 0.9 for mean in means.values())

    # Anytime property: the final accuracy does not fall far below the initial one.
    for strategy, curve in curves.items():
        assert curve[-1] >= curve[0] - 0.05, strategy
