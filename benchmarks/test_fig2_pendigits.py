"""Figure 2 — anytime classification accuracy on Pendigits for four bulk loads.

Paper protocol (§3.2): 4-fold cross validation, global-best descent, qbk
improvement strategy, accuracy after each node read.  The paper's findings the
bench asserts:

* the EM top-down bulk load outperforms all other approaches,
* the Hilbert bulk load and iterative insertion show a steep initial increase,
* the Goldberger bulk load "fails to improve the accuracy over the iterative
  insertion for the first 50 nodes",
* accuracy improves (or at worst stays level) with more node reads.
"""

import numpy as np
from conftest import print_heading, run_once

from repro.evaluation import ExperimentConfig, format_curve_table, run_bulkload_experiment

CONFIG = ExperimentConfig(
    dataset="pendigits",
    size=1200,
    max_nodes=80,
    n_folds=4,
    strategies=("em_topdown", "hilbert", "goldberger", "iterative"),
    descents=("glo",),
    max_test_objects=30,
    random_state=0,
)


def test_fig2_pendigits_bulkload_comparison(benchmark):
    result = run_once(benchmark, run_bulkload_experiment, CONFIG)

    print_heading("Figure 2 — anytime accuracy on pendigits (4-fold CV, glo descent, qbk)")
    print(format_curve_table(result, nodes=(0, 5, 10, 20, 40, 60, 80)))

    curves = {strategy: result.mean_curve(strategy) for strategy, _ in result.curves}
    means = {strategy: curve.mean() for strategy, curve in curves.items()}

    # Sanity: every curve is a valid accuracy series of the requested length.
    for strategy, curve in curves.items():
        assert curve.shape == (CONFIG.max_nodes + 1,)
        assert np.all((0.0 <= curve) & (curve <= 1.0)), strategy

    # EM top-down is the best strategy overall and starts from the best model.
    others = [means[s] for s in ("hilbert", "goldberger", "iterative")]
    assert means["em_topdown"] >= max(others) - 0.01
    assert curves["em_topdown"][0] >= curves["hilbert"][0] + 0.02
    assert curves["em_topdown"][0] >= curves["iterative"][0]

    # Hilbert packing and iterative insertion improve steeply with more nodes.
    assert curves["hilbert"][-1] >= curves["hilbert"][0] + 0.02
    assert curves["iterative"][-1] >= curves["iterative"][0] - 0.01

    # Goldberger does not beat iterative insertion early on (first ~10 nodes).
    assert curves["goldberger"][:10].mean() <= curves["iterative"][:10].mean() + 0.03

    # Anytime property: no strategy ends below its starting accuracy by much.
    for strategy, curve in curves.items():
        assert curve[-1] >= curve[0] - 0.03, strategy
