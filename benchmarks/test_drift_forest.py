"""Drift-recovery benchmark: the adaptive (decayed) forest on evolving streams.

The §4.2 extension's whole point: on a stream whose concept changes, a
never-forgetting kernel model is *worse than useless* — every stale kernel
votes for the old concept — while the exponentially decayed forest fades the
old concept out and recovers.  This benchmark prints the sliding-window
prequential accuracy around a sudden concept swap for both forests and
asserts the qualitative ordering (the quantitative gate lives in
``collect_bench.py`` / ``check_regression.py``).
"""

from repro.evaluation import run_drift_recovery_experiment


def test_bench_drift_recovery_decayed_vs_plain():
    result = run_drift_recovery_experiment(
        size=600, warmup=64, window=100, decay_rate=0.02, expiry_threshold=1e-3, random_state=0
    )
    drift = result.drift_position
    print("\nsudden-drift stream (600 objects, concept swap at midpoint)")
    print(f"{'window end':>12s}{'plain':>9s}{'decayed':>9s}")
    for position in range(49, len(result.plain_curve), 50):
        print(
            f"{position:>12d}{result.plain_curve[position]:>9.3f}"
            f"{result.decayed_curve[position]:>9.3f}"
        )
    print(
        f"post-drift sliding-window accuracy: plain "
        f"{result.plain_post_drift_accuracy:.3f}, decayed "
        f"{result.decayed_post_drift_accuracy:.3f} "
        f"(gain {result.recovery_gain:+.3f}); stored objects "
        f"{result.plain_stored_objects} vs {result.decayed_stored_objects}"
    )
    # Pre-drift both models are fine...
    assert result.plain_curve[:drift].mean() > 0.8
    assert result.decayed_curve[:drift].mean() > 0.8
    # ...post-drift only the decayed forest recovers.
    assert result.decayed_post_drift_accuracy > result.plain_post_drift_accuracy + 0.3
    assert result.decayed_curve[-1] > 0.85
    assert result.plain_curve[-1] < 0.5
    # Expiry keeps the decayed forest's memory at or below the plain one's.
    assert result.decayed_stored_objects <= result.plain_stored_objects
