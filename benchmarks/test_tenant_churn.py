"""Multi-tenant registry churn: bounded memory, no leaks, trace identity.

The PR-CI sized run rotates 12 tenants through a 3-entry registry; the
nightly soak (``RUN_SOAK=1``) scales the same driver to the full 32-tenant
load/evict storm over capacity 4 — the configuration the acceptance
criteria name — with enough rounds to surface slow segment leaks.
"""

from __future__ import annotations

import os

import pytest

from conftest import print_heading, run_once
from serving_load import build_serving_snapshot
from tenant_churn import run_registry_trace_identity, run_tenant_churn_soak


@pytest.fixture(scope="module")
def snapshots(tmp_path_factory):
    root = tmp_path_factory.mktemp("tenant-churn")
    paths = []
    for index in range(3):
        path = root / f"tenant-{index}.npz"
        build_serving_snapshot(path, train_size=500, query_size=64, random_state=index)
        paths.append(path)
    main = root / "forest.npz"
    queries = build_serving_snapshot(main, train_size=500, query_size=128, random_state=0)
    return paths, main, queries


def _assert_churn_invariants(report):
    assert report["bounded"], (
        f"resident shm {report['peak_resident_bytes']} exceeded the "
        f"capacity bound {report['bound_bytes']}"
    )
    assert report["leaked_segments"] == 0, "evicted tenant segments left linked"
    assert report["leaked_after_close"] == 0, "registry close leaked segments"
    assert report["evictions"] > 0, "churn never overflowed the cache"


def test_tenant_churn_stays_bounded(benchmark, snapshots):
    paths, _, queries = snapshots
    report = run_once(
        benchmark,
        run_tenant_churn_soak,
        paths,
        queries,
        n_tenants=12,
        capacity=3,
        rounds=24,
        batch=16,
    )
    print_heading("tenant churn (12 tenants / capacity 3 / 24 rounds)")
    for key in ("peak_resident_bytes", "bound_bytes", "evictions", "reloads", "p99_ms", "cold_load_ms_mean"):
        print(f"  {key:24s} {report[key]}")
    _assert_churn_invariants(report)
    assert report["segments_created"] > report["capacity"]


def test_registry_routes_preserve_trace_identity(benchmark, snapshots):
    _, main, queries = snapshots
    report = run_once(benchmark, run_registry_trace_identity, main, queries[:48], node_budget=8)
    print_heading("registry trace identity (legacy vs /v1, fixed budget 8)")
    print(f"  trace_hash {report['trace_hash']}")
    assert report["routes_byte_identical"], "legacy and /v1 payloads diverged"
    assert report["identical"], "registry-served predictions left the lockstep trace"


@pytest.mark.skipif(
    not os.environ.get("RUN_SOAK"),
    reason="32-tenant churn storm only runs in the scheduled nightly workflow (set RUN_SOAK=1)",
)
def test_tenant_churn_storm_nightly(benchmark, snapshots):
    """The acceptance-sized storm: 32 tenants over capacity 4, long run."""
    paths, _, queries = snapshots
    rounds = int(os.environ.get("SOAK_CHURN_ROUNDS", "320"))
    report = run_once(
        benchmark,
        run_tenant_churn_soak,
        paths,
        queries,
        n_tenants=32,
        capacity=4,
        rounds=rounds,
        batch=32,
    )
    print_heading(f"tenant churn storm (32 tenants / capacity 4 / {rounds} rounds)")
    for key, value in report.items():
        print(f"  {key:24s} {value}")
    _assert_churn_invariants(report)
    # A storm this long must keep cycling segments, not pin a lucky subset.
    assert report["reloads"] >= 32
