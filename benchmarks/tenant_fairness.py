"""Two-tenant starvation battery for the fairness-aware admission layer.

A *hot* tenant offers 50x the background tenant's load against a shared
:class:`~repro.serving.AsyncServingClient` whose deficit-round-robin
scheduler and per-tenant quotas are the thing under test.  The questions
the battery answers are the ones a broken scheduler fails loudly:

* does the background tenant still complete (no starvation) while the hot
  tenant saturates the service, and
* does its tail latency stay within a small multiple of its *solo*
  baseline — the same stream replayed with the hot tenant absent, on the
  same machine, through the same client configuration?

Both numbers are same-machine ratios in the repo's benchmark convention
(DESIGN.md): the solo run is the yardstick, so a uniformly slower runner
moves both ends and the gate only trips when fairness itself regresses.
The hot tenant's queue is capped (``max_queue_depth``), so its overload
shows up as bounded backlog plus ``queue_full`` rejections instead of an
unbounded grab of the shared pending budget.
"""

from __future__ import annotations

import asyncio
import math
import os
import sys
from typing import TYPE_CHECKING, Dict, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from pathlib import Path

    from repro.data.synthetic import Dataset

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.evaluation import RequestTrace  # noqa: E402
from repro.serving import (  # noqa: E402
    AsyncServingClient,
    ModelRegistry,
    TenantPolicy,
    drive_open_loop,
)
from repro.stream import DataStream, PoissonArrival  # noqa: E402

BACKGROUND = "background"
HOT = "hot"


def _tiled(dataset: "Dataset", n_items: int) -> "Dataset":
    """``dataset`` repeated up to ``n_items`` objects (streams do not cycle)."""
    if len(dataset.features) >= n_items:
        return dataset
    repeats = int(math.ceil(n_items / len(dataset.features)))
    return type(dataset)(
        dataset.name,
        np.tile(dataset.features, (repeats, 1))[:n_items],
        np.tile(dataset.labels, repeats)[:n_items],
        dataset.n_classes,
    )


def _open_registry(
    snapshot_path: "str | Path", background_weight: float, hot_queue_depth: int
) -> ModelRegistry:
    """Both tenants on the same snapshot, with the fairness policies set."""
    registry = ModelRegistry(capacity=2)
    registry.load(BACKGROUND, snapshot_path, policy=TenantPolicy(weight=background_weight))
    registry.load(
        HOT, snapshot_path, policy=TenantPolicy(weight=1.0, max_queue_depth=hot_queue_depth)
    )
    return registry


def run_two_tenant_starvation(
    snapshot_path: "str | Path",
    tail_dataset: "Dataset",
    background_speed: float = 40.0,
    hot_multiplier: float = 50.0,
    background_limit: int = 120,
    node_budget: int = 8,
    max_pending: int = 512,
    max_batch: int = 3,
    background_weight: float = 4.0,
    hot_queue_depth: int = 64,
    deadline_factor: float = 20.0,
    min_deadline_ms: float = 500.0,
    random_state: int = 7,
) -> Dict[str, object]:
    """Solo baseline, then the contended run, then the fairness verdicts.

    The background tenant replays ``tail_dataset`` at ``background_speed``
    arrivals/s twice through identically configured deployments: once alone
    (the baseline) and once while the hot tenant offers ``hot_multiplier``
    times that rate for the whole background run.  The contended background
    stream carries a deadline derived from the solo p99 (``deadline_factor``
    times it, floored at ``min_deadline_ms``) so starvation — requests parked
    behind the hot backlog — degrades the *completion rate* instead of
    hiding in an unbounded latency tail.

    Returns the two background trace summaries plus the gate numbers:
    ``background_completion`` (served fraction under contention) and
    ``p99_ratio`` (contended p99 over solo p99), alongside the hot tenant's
    rejection mix and the client's admission snapshot.
    """
    if hot_multiplier <= 1.0:
        raise ValueError("hot_multiplier must exceed 1 for a starvation run")

    hot_limit = int(math.ceil(background_limit * hot_multiplier))
    background_data = _tiled(tail_dataset, background_limit)
    hot_data = _tiled(tail_dataset, hot_limit)

    def background_stream() -> DataStream:
        return DataStream(
            background_data, arrival=PoissonArrival(rate=1.0), random_state=random_state
        )

    def hot_stream() -> DataStream:
        return DataStream(
            hot_data, arrival=PoissonArrival(rate=1.0), random_state=random_state + 1
        )

    async def solo() -> List[dict]:
        registry = _open_registry(snapshot_path, background_weight, hot_queue_depth)
        try:
            async with AsyncServingClient(
                registry=registry, max_pending=max_pending, max_batch=max_batch, linger_s=0.001
            ) as client:
                return await drive_open_loop(
                    client,
                    background_stream(),
                    speed=background_speed,
                    limit=background_limit,
                    node_budget=node_budget,
                    tenant=BACKGROUND,
                )
        finally:
            registry.close()

    async def contended(deadline_ms: float) -> Tuple[List[dict], List[dict], Dict[str, object]]:
        registry = _open_registry(snapshot_path, background_weight, hot_queue_depth)
        try:
            async with AsyncServingClient(
                registry=registry, max_pending=max_pending, max_batch=max_batch, linger_s=0.001
            ) as client:
                # The hot stream outlasts the background run: its request
                # count scales with the full offered-load ratio.
                background_records, hot_records = await asyncio.gather(
                    drive_open_loop(
                        client,
                        background_stream(),
                        speed=background_speed,
                        limit=background_limit,
                        node_budget=node_budget,
                        deadline_ms=deadline_ms,
                        tenant=BACKGROUND,
                    ),
                    drive_open_loop(
                        client,
                        hot_stream(),
                        speed=background_speed * hot_multiplier,
                        limit=hot_limit,
                        node_budget=node_budget,
                        tenant=HOT,
                    ),
                )
                admission = client.stats_snapshot()["admission"]
                return background_records, hot_records, admission
        finally:
            registry.close()

    # Two solo replays, pooled: the baseline p99 is the ratio's denominator,
    # and a single replay's p99 is one-sample-deep — one lucky run would
    # read as contended-side unfairness.
    solo_trace = RequestTrace.from_records(asyncio.run(solo()) + asyncio.run(solo()))
    solo_summary = solo_trace.summary()
    solo_p99_ms = float(solo_summary["latency_ms"]["p99"])
    deadline_ms = max(min_deadline_ms, deadline_factor * solo_p99_ms)

    background_records, hot_records, admission = asyncio.run(contended(deadline_ms))
    background_trace = RequestTrace.from_records(background_records)
    hot_trace = RequestTrace.from_records(hot_records)
    background_summary = background_trace.summary()
    # A fully starved background tenant serves nothing: report an infinite
    # tail instead of KeyError-ing so the gate fails on the number.
    contended_latency = background_summary.get("latency_ms", {"p99": float("inf")})
    contended_p99_ms = float(contended_latency["p99"])
    completion = background_trace.completion_rate()

    return {
        "background_speed": background_speed,
        "hot_multiplier": hot_multiplier,
        "background_limit": background_limit,
        "deadline_ms": deadline_ms,
        "solo": solo_summary,
        "contended": background_summary,
        "hot": hot_trace.summary(),
        "background_completion": float(completion if completion is not None else 0.0),
        "background_rejection_mix": background_trace.rejection_mix(),
        "hot_rejection_mix": hot_trace.rejection_mix(),
        "solo_p99_ms": solo_p99_ms,
        "contended_p99_ms": contended_p99_ms,
        "p99_ratio": contended_p99_ms / solo_p99_ms if solo_p99_ms > 0 else float("inf"),
        "admission": admission,
    }
