"""Ablation A3 — kernel choice (paper §4.1, future work).

The paper lists "the use of different kernels, e.g. Epanechnikov kernels
instead of Gaussian kernels" as an option to evaluate.  This bench compares
the two kernel families on the pendigits stand-in; the expectation is that the
approach is robust to the kernel choice (comparable accuracy), which is what
the bench asserts.
"""

import numpy as np
from conftest import print_heading, run_once

from repro.core import BayesTreeConfig
from repro.evaluation import ExperimentConfig, run_bulkload_experiment
from repro.evaluation.experiment import DEFAULT_EXPERIMENT_CONFIG

KERNELS = ("gaussian", "epanechnikov")


def run_kernel_sweep():
    curves = {}
    for kernel in KERNELS:
        tree_config = BayesTreeConfig(tree=DEFAULT_EXPERIMENT_CONFIG.tree, kernel=kernel)
        config = ExperimentConfig(
            dataset="pendigits",
            size=900,
            max_nodes=50,
            n_folds=3,
            strategies=("em_topdown",),
            descents=("glo",),
            max_test_objects=25,
            random_state=3,
            tree_config=tree_config,
        )
        curves[kernel] = run_bulkload_experiment(config).mean_curve("em_topdown", "glo")
    return curves


def test_ablation_kernel_choice(benchmark):
    curves = run_once(benchmark, run_kernel_sweep)

    print_heading("Ablation A3 — Gaussian vs. Epanechnikov kernels (pendigits, EM top-down)")
    header = "kernel".ljust(15) + "".join(f"n={n}".rjust(9) for n in (0, 10, 20, 40, 50)) + "     mean"
    print(header)
    for kernel, curve in curves.items():
        cells = "".join(f"{curve[n]:9.3f}" for n in (0, 10, 20, 40, 50))
        print(kernel.ljust(15) + cells + f"{curve.mean():9.3f}")

    for kernel, curve in curves.items():
        assert np.all((0.0 <= curve) & (curve <= 1.0)), kernel
        # Both kernels produce a usable classifier on the stand-in.
        assert curve.mean() > 0.6, kernel

    # Robustness: the approach does not hinge on the Gaussian kernel; the
    # Epanechnikov variant stays within a few points of it.  (Its compact
    # support still loses a little accuracy for queries far from all kernels.)
    assert abs(curves["gaussian"].mean() - curves["epanechnikov"].mean()) <= 0.15
