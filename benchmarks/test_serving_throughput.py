"""Serving engine benchmark: sharded throughput and latency vs worker count.

Prints a queries/sec + p50/p99 latency table for the synchronous fallback,
one worker and (cores permitting) four workers, and pins the correctness
contract: the engine's predictions — sharded or not, budgeted or not — are
bit-identical to the in-process classifier on the restored snapshot.

The *scaling* assertion (>1.8x at 4 workers, the ISSUE 4 acceptance bar) only
runs on machines with at least four usable cores; single-core CI containers
cannot physically exhibit multi-process speedups, and a flaky gate is worse
than a scoped one.  The bench-regression gate enforces the same bar through
``collect_bench.py`` on the 4-vCPU CI runners (``min_cores`` metric guard).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.persist import load_forest
from serving_load import build_serving_snapshot, run_serving_load

from conftest import print_heading, run_once

#: Worker counts probed by the sweep (0 = synchronous in-process fallback).
SWEEP_WORKERS = (0, 1, 4)

#: Minimum 4-worker over 1-worker throughput ratio asserted on >=4-core hosts.
MIN_SPEEDUP_4W = 1.8


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    path = tmp_path_factory.mktemp("serving") / "forest.npz"
    queries = build_serving_snapshot(path, train_size=1600, query_size=256, random_state=0)
    return path, queries


def test_engine_serves_bit_identical_predictions(snapshot):
    path, queries = snapshot
    local = load_forest(path)
    expected_full = local.predict_batch(queries)
    expected_budgeted = local.predict_batch(queries[:64], node_budget=15)
    for workers in (0, 2):
        measured = run_serving_load(path, workers, queries[:64], batches=1, warmup=0)
        assert measured["qps"] > 0
        from repro.serving import ServingEngine

        with ServingEngine(path, workers=workers) as engine:
            assert engine.predict_batch(queries) == expected_full
            assert engine.predict_batch(queries[:64], node_budget=15) == expected_budgeted


def test_serving_throughput_scaling(snapshot, benchmark):
    path, queries = snapshot
    cores = os.cpu_count() or 1
    workers = [count for count in SWEEP_WORKERS if count <= max(1, cores)]
    if 1 not in workers:
        workers.append(1)

    def sweep():
        return {
            count: run_serving_load(path, count, queries, batches=6, warmup=1)
            for count in sorted(set(workers))
        }

    results = run_once(benchmark, sweep)

    print_heading("serving throughput vs worker count (256-query micro-batches)")
    print(f"{'workers':>8s} {'qps':>10s} {'p50 ms':>9s} {'p99 ms':>9s}")
    for count in sorted(results):
        row = results[count]
        label = "sync" if count == 0 else str(count)
        print(f"{label:>8s} {row['qps']:10.0f} {row['p50_ms']:9.2f} {row['p99_ms']:9.2f}")

    for row in results.values():
        assert row["qps"] > 0
        assert row["p99_ms"] >= row["p50_ms"] > 0
    if 4 in results and cores >= 4:
        speedup = results[4]["qps"] / results[1]["qps"]
        print(f"\n4-worker vs 1-worker speedup: {speedup:.2f}x (floor {MIN_SPEEDUP_4W}x)")
        assert speedup > MIN_SPEEDUP_4W, (
            f"sharded serving scaled only {speedup:.2f}x at 4 workers "
            f"(expected > {MIN_SPEEDUP_4W}x on a {cores}-core host)"
        )


def test_budgeted_serving_reuses_lockstep_driver(snapshot):
    """Budgeted (anytime) load is served query-sharded with correct results."""
    path, queries = snapshot
    local = load_forest(path)
    budgets = np.asarray([5, 10, 15, 20] * 16)
    expected = [
        result.final_prediction
        for result in local.classify_anytime_batch(
            queries[:64], max_nodes=budgets, record_history=False
        )
    ]
    from repro.serving import ServingEngine

    with ServingEngine(path, workers=2) as engine:
        assert engine.predict_batch(queries[:64], node_budget=budgets) == expected
