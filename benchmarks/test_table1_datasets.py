"""Table 1 — data sets used in the experiments.

Regenerates the paper's Table 1 (name, size, classes, features) for the
synthetic stand-ins and reports both the paper's original sizes and the
scaled-down sizes used by the benchmarks (see DESIGN.md, substitutions).
"""

from conftest import print_heading, run_once

from repro.data import DATASET_SPECS
from repro.evaluation import table1_rows

#: Paper's Table 1 for cross-checking the stand-ins.
PAPER_TABLE1 = {
    "pendigits": {"size": 10_992, "classes": 10, "features": 16},
    "letter": {"size": 20_000, "classes": 26, "features": 16},
    "gender": {"size": 189_961, "classes": 2, "features": 9},
    "covertype": {"size": 581_012, "classes": 7, "features": 10},
}

#: Scaled-down sizes the benchmark figures use.
BENCH_SIZES = {"pendigits": 1200, "letter": 1560, "gender": 1000, "covertype": 1100}


def test_table1_dataset_summary(benchmark):
    rows = run_once(benchmark, table1_rows, sizes=BENCH_SIZES)

    print_heading("Table 1 — data sets (paper vs. synthetic stand-in)")
    header = f"{'name':12s}{'paper size':>12s}{'bench size':>12s}{'classes':>9s}{'features':>10s}"
    print(header)
    for row in rows:
        print(
            f"{row['name']:12s}{row['paper_size']:>12,d}{row['size']:>12,d}"
            f"{row['classes']:>9d}{row['features']:>10d}"
        )

    by_name = {row["name"]: row for row in rows}
    assert set(by_name) == set(PAPER_TABLE1)
    for name, expected in PAPER_TABLE1.items():
        row = by_name[name]
        # Classes and features match the paper exactly; sizes are scaled down.
        assert row["classes"] == expected["classes"]
        assert row["features"] == expected["features"]
        assert row["paper_size"] == expected["size"]
        assert row["size"] == BENCH_SIZES[name]
        assert DATASET_SPECS[name].paper_size == expected["size"]
