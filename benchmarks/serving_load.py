"""Serving load generator shared by the throughput benches and collect_bench.

Builds a snapshotted forest once, then replays load against
:class:`repro.serving.ServingEngine` — directly (worker-count scaling) or
through the :mod:`repro.serving.frontend` asyncio layer (closed-loop waves,
open-loop arrival replay with adaptive budgets) — measuring queries/second
and latency percentiles.  Timing follows the repo's benchmark conventions
(DESIGN.md, running the benchmarks): the interesting numbers are *ratios
measured on the same machine* (worker scaling, slow-vs-burst budget depth)
or calibration-normalised throughputs, never raw wall-clock.
"""

from __future__ import annotations

import asyncio
import os
import sys
import time
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from pathlib import Path

    from repro.data.synthetic import Dataset

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.core import AnytimeBayesClassifier  # noqa: E402
from repro.data import make_dataset  # noqa: E402
from repro.evaluation import RequestTrace, classification_trace_hash, latency_percentiles  # noqa: E402
from repro.evaluation.experiment import DEFAULT_EXPERIMENT_CONFIG  # noqa: E402
from repro.persist import load_flat_forest, load_forest, save_forest  # noqa: E402
from repro.serving import (  # noqa: E402
    ADAPTIVE,
    AdaptiveBudgetPolicy,
    AsyncServingClient,
    ServingEngine,
    drive_open_loop,
)
from repro.stream import DataStream, PoissonArrival  # noqa: E402


def build_serving_snapshot(
    path: "str | Path",
    train_size: int = 1600,
    query_size: int = 256,
    random_state: int = 0,
) -> np.ndarray:
    """Train a forest, snapshot it to ``path``, return the query block.

    The queries are test objects tiled to ``query_size`` rows — one serving
    micro-batch worth of traffic with realistic feature values.
    """
    dataset = make_dataset("pendigits", size=train_size + 200, random_state=random_state)
    classifier = AnytimeBayesClassifier(config=DEFAULT_EXPERIMENT_CONFIG)
    classifier.fit(dataset.features[:train_size], dataset.labels[:train_size])
    save_forest(classifier, path)
    tail = dataset.features[train_size:]
    repeats = int(np.ceil(query_size / tail.shape[0]))
    queries = np.tile(tail, (repeats, 1))[:query_size]
    return queries


def build_labelled_tail(
    train_size: int = 1600, tail_size: int = 200, random_state: int = 0
) -> "Dataset":
    """The labelled holdout tail matching :func:`build_serving_snapshot`.

    Returns a :class:`~repro.data.synthetic.Dataset` view of the last
    ``tail_size`` objects — the raw material for an open-loop arrival stream
    whose served predictions can be scored against true labels.
    """
    dataset = make_dataset("pendigits", size=train_size + tail_size, random_state=random_state)
    return dataset.tail(train_size)


def run_serving_load(
    snapshot_path: "str | Path",
    workers: int,
    queries: np.ndarray,
    batches: int = 8,
    warmup: int = 2,
    node_budget: Optional[int] = None,
) -> Dict[str, float]:
    """Measure one engine configuration under a fixed replayed load.

    Returns queries/second over the measured batches plus per-batch latency
    percentiles (milliseconds).  Warm-up rounds run first so worker start-up
    and snapshot restore never pollute the measurement — the engine warm-loads
    snapshots at spin-up, warm-up only stabilises caches.
    """
    with ServingEngine(snapshot_path, workers=workers) as engine:
        for _ in range(warmup):
            engine.predict_batch(queries, node_budget=node_budget)
        samples: List[float] = []
        start = time.perf_counter()
        for _ in range(batches):
            tick = time.perf_counter()
            engine.predict_batch(queries, node_budget=node_budget)
            samples.append(time.perf_counter() - tick)
        total = time.perf_counter() - start
        percentiles = latency_percentiles(samples, percentiles=(50.0, 99.0))
        return {
            "workers": float(engine.n_shards if engine.is_multiprocess else 0),
            "qps": batches * queries.shape[0] / total,
            "p50_ms": percentiles["p50"],
            "p99_ms": percentiles["p99"],
            "mean_ms": percentiles["mean"],
        }


def run_frontend_closed_loop(
    snapshot_path: "str | Path",
    queries: np.ndarray,
    batches: int = 6,
    warmup: int = 2,
    node_budget: Optional[int] = None,
    workers: int = 0,
) -> Dict[str, float]:
    """Closed-loop async front-end load: waves of ``classify_batch`` calls.

    Each wave submits every query through the event-loop micro-batcher and
    waits for all results before the next wave starts (closed loop — the
    generator never outruns the server).  Returns queries/second plus
    per-wave latency percentiles, directly comparable to
    :func:`run_serving_load`'s direct-engine numbers: the difference is the
    front-end's coalescing/dispatch overhead.
    """

    async def main() -> Dict[str, float]:
        with ServingEngine(snapshot_path, workers=workers, linger_s=0.001) as engine:
            async with AsyncServingClient(engine, max_pending=4 * queries.shape[0]) as client:
                for _ in range(warmup):
                    await client.classify_batch(queries, node_budget=node_budget)
                samples: List[float] = []
                start = time.perf_counter()
                for _ in range(batches):
                    tick = time.perf_counter()
                    await client.classify_batch(queries, node_budget=node_budget)
                    samples.append(time.perf_counter() - tick)
                total = time.perf_counter() - start
        percentiles = latency_percentiles(samples, percentiles=(50.0, 99.0))
        return {
            "qps": batches * queries.shape[0] / total,
            "p50_ms": percentiles["p50"],
            "p99_ms": percentiles["p99"],
            "mean_ms": percentiles["mean"],
        }

    return asyncio.run(main())


def run_frontend_open_loop(
    snapshot_path: "str | Path",
    tail_dataset: "Dataset",
    speed: float,
    limit: int = 160,
    workers: int = 0,
    policy: Optional[AdaptiveBudgetPolicy] = None,
    deadline_ms: Optional[float] = None,
    random_state: int = 5,
) -> Dict[str, object]:
    """Open-loop adaptive-budget load at a given arrival speed.

    Replays ``tail_dataset`` as a Poisson stream at ``speed`` arrivals per
    abstract-rate unit per second and classifies every item with
    ``node_budget=ADAPTIVE``; requests fire at their arrival times whether
    or not earlier ones finished.  Returns the :class:`RequestTrace` summary
    plus the mean granted budget — the number that realises the paper's
    anytime curve as a serving policy (large at low rates, small in bursts).
    """

    async def main() -> Dict[str, object]:
        with ServingEngine(snapshot_path, workers=workers, linger_s=0.001) as engine:
            client = AsyncServingClient(
                engine,
                max_pending=max(64, limit),
                budget_policy=policy or AdaptiveBudgetPolicy(),
            )
            async with client:
                stream = DataStream(
                    tail_dataset, arrival=PoissonArrival(rate=1.0), random_state=random_state
                )
                records = await drive_open_loop(
                    client,
                    stream,
                    speed=speed,
                    limit=limit,
                    node_budget=ADAPTIVE,
                    deadline_ms=deadline_ms,
                )
        trace = RequestTrace.from_records(records)
        summary = trace.summary()
        summary["speed"] = speed
        return summary

    return asyncio.run(main())


def run_frontend_trace_identity(
    snapshot_path: "str | Path", queries: np.ndarray, node_budget: int = 8
) -> Dict[str, object]:
    """Pin the fixed-budget trace identity of the async front-end.

    Serves ``queries`` at a fixed per-query budget three ways — through the
    async front-end, via ``ServingEngine.predict_batch`` directly, and with
    the in-process lockstep driver whose full refinement trace feeds
    ``classification_trace_hash`` — and reports whether all three agree plus
    the trace hash itself (the engine's budgeted path *is* the lockstep
    driver, so agreement means the front-end's predictions carry exactly the
    hashed trace).
    """

    async def frontend_predictions() -> "Tuple[List[object], List[object]]":
        with ServingEngine(snapshot_path, workers=0, linger_s=0.001) as engine:
            async with AsyncServingClient(engine) as client:
                via_frontend = await client.classify_batch(queries, node_budget=node_budget)
                direct = engine.predict_batch(queries, node_budget=node_budget)
                return via_frontend, direct

    via_frontend, direct = asyncio.run(frontend_predictions())
    forest = load_forest(snapshot_path)
    traced = forest.classify_anytime_batch(queries, max_nodes=node_budget)
    trace_hash = classification_trace_hash(traced)
    identical = (
        via_frontend == direct and via_frontend == [result.final_prediction for result in traced]
    )
    return {
        "identical": bool(identical),
        "trace_hash": trace_hash,
        "node_budget": node_budget,
        "queries": int(queries.shape[0]),
    }


def run_flat_descent_comparison(
    snapshot_path: "str | Path", queries: np.ndarray, max_nodes: int = 20, repeats: int = 3
) -> Dict[str, object]:
    """Flat-column descent vs object-graph descent on the same snapshot.

    Loads the forest both ways — ``load_forest`` (object graph) and
    ``load_flat_forest`` (pre/post-order columns) — pins that the anytime
    lockstep traces are hash-identical, then times ``classify_anytime_batch``
    on each (best of ``repeats``, history recording off).  The speedup is a
    same-machine ratio: the flat path skips per-refinement parameter packing
    because every node's component parameters are contiguous column slices.
    """
    object_forest = load_forest(snapshot_path)
    flat_forest = load_flat_forest(snapshot_path)
    # Trace identity first (this also warms both forests' caches).
    object_hash = classification_trace_hash(
        object_forest.classify_anytime_batch(queries, max_nodes=max_nodes)
    )
    flat_hash = classification_trace_hash(
        flat_forest.classify_anytime_batch(queries, max_nodes=max_nodes)
    )

    def best_of(forest: Any) -> float:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            forest.classify_anytime_batch(
                queries, max_nodes=max_nodes, record_history=False
            )
            best = min(best, time.perf_counter() - start)
        return best

    object_s = best_of(object_forest)
    flat_s = best_of(flat_forest)
    return {
        "identical": bool(object_hash == flat_hash),
        "trace_hash": flat_hash,
        "object_s": object_s,
        "flat_s": flat_s,
        "speedup": object_s / flat_s,
        "max_nodes": int(max_nodes),
        "queries": int(queries.shape[0]),
    }


def run_warm_start_comparison(
    snapshot_path: "str | Path", queries: np.ndarray, workers: int = 4
) -> Dict[str, object]:
    """Zero-copy shared-memory workers vs per-worker snapshot loading.

    Spins the same snapshot up twice with ``workers`` shard processes —
    ``zero_copy=True`` (one shared segment, workers attach) and
    ``zero_copy=False`` (every worker restores the object graph) — serves a
    probe batch on each, and compares the measured per-worker warm-start
    latency and the private (non-shared) RSS reported by ``/proc``.  Both
    ratios are same-machine comparisons; the private-RSS ratio is the
    O(1)-memory-in-workers claim made measurable.
    """
    results: Dict[str, object] = {"workers": int(workers)}
    for key, zero_copy in (("zero_copy", True), ("object", False)):
        with ServingEngine(snapshot_path, workers=workers, zero_copy=zero_copy) as engine:
            engine.predict_batch(queries[:32])
            profiles = engine.worker_profiles()
            warm = [p["warm_start_ms"] for p in profiles if p["warm_start_ms"]]
            private = [p["private_kb"] for p in profiles if p["private_kb"]]
            shared = [p["shared_kb"] for p in profiles if p["shared_kb"]]
            stats = engine.stats_snapshot()
            results[key] = {
                "n_workers": len(profiles),
                "warm_start_ms_mean": float(np.mean(warm)) if warm else 0.0,
                "warm_start_ms_max": float(np.max(warm)) if warm else 0.0,
                "private_kb_mean": float(np.mean(private)) if private else 0.0,
                "shared_kb_mean": float(np.mean(shared)) if shared else 0.0,
                "shm_bytes": stats["shm_bytes"],
            }
    flat, obj = results["zero_copy"], results["object"]
    results["warm_start_speedup"] = (
        obj["warm_start_ms_mean"] / flat["warm_start_ms_mean"]
        if flat["warm_start_ms_mean"]
        else float("inf")
    )
    results["private_rss_ratio"] = (
        obj["private_kb_mean"] / flat["private_kb_mean"]
        if flat["private_kb_mean"]
        else float("inf")
    )
    return results
