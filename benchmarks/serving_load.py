"""Serving load generator shared by the throughput bench and collect_bench.

Builds a snapshotted forest once, then replays query blocks against
:class:`repro.serving.ServingEngine` configured with different worker counts,
measuring queries/second and per-batch latency percentiles.  Timing follows
the repo's benchmark conventions (DESIGN.md, running the benchmarks): the
interesting numbers are *ratios measured on the same machine* (worker
scaling) or calibration-normalised throughputs, never raw wall-clock.
"""

from __future__ import annotations

import os
import sys
import time
from typing import Dict, Optional

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.core import AnytimeBayesClassifier  # noqa: E402
from repro.data import make_dataset  # noqa: E402
from repro.evaluation import latency_percentiles  # noqa: E402
from repro.evaluation.experiment import DEFAULT_EXPERIMENT_CONFIG  # noqa: E402
from repro.persist import save_forest  # noqa: E402
from repro.serving import ServingEngine  # noqa: E402


def build_serving_snapshot(
    path,
    train_size: int = 1600,
    query_size: int = 256,
    random_state: int = 0,
):
    """Train a forest, snapshot it to ``path``, return the query block.

    The queries are test objects tiled to ``query_size`` rows — one serving
    micro-batch worth of traffic with realistic feature values.
    """
    dataset = make_dataset("pendigits", size=train_size + 200, random_state=random_state)
    classifier = AnytimeBayesClassifier(config=DEFAULT_EXPERIMENT_CONFIG)
    classifier.fit(dataset.features[:train_size], dataset.labels[:train_size])
    save_forest(classifier, path)
    tail = dataset.features[train_size:]
    repeats = int(np.ceil(query_size / tail.shape[0]))
    queries = np.tile(tail, (repeats, 1))[:query_size]
    return queries


def run_serving_load(
    snapshot_path,
    workers: int,
    queries: np.ndarray,
    batches: int = 8,
    warmup: int = 2,
    node_budget: Optional[int] = None,
) -> Dict[str, float]:
    """Measure one engine configuration under a fixed replayed load.

    Returns queries/second over the measured batches plus per-batch latency
    percentiles (milliseconds).  Warm-up rounds run first so worker start-up
    and snapshot restore never pollute the measurement — the engine warm-loads
    snapshots at spin-up, warm-up only stabilises caches.
    """
    with ServingEngine(snapshot_path, workers=workers) as engine:
        for _ in range(warmup):
            engine.predict_batch(queries, node_budget=node_budget)
        samples = []
        start = time.perf_counter()
        for _ in range(batches):
            tick = time.perf_counter()
            engine.predict_batch(queries, node_budget=node_budget)
            samples.append(time.perf_counter() - tick)
        total = time.perf_counter() - start
        percentiles = latency_percentiles(samples, percentiles=(50.0, 99.0))
        return {
            "workers": float(engine.n_shards if engine.is_multiprocess else 0),
            "qps": batches * queries.shape[0] / total,
            "p50_ms": percentiles["p50"],
            "p99_ms": percentiles["p99"],
            "mean_ms": percentiles["mean"],
        }
