"""Micro-benchmarks of the core operations.

These are classic timing benchmarks (pytest-benchmark with several rounds) for
the operations whose costs the paper reasons about: inserting a new training
object (incremental learning, §2.2), answering a probability density query
with a fixed node budget (anytime classification), building the per-class
trees with the different bulk loads (§3.1), and one anytime clustering
insertion (§4.2), plus the scalar-vs-vectorised comparison of the log-space
batch query engine (DESIGN.md, batch API).
"""

import time

import numpy as np
import pytest

from repro.bulkload import make_bulk_loader
from repro.clustering import ClusTree
from repro.core import AnytimeBayesClassifier, BayesTree, BayesTreeConfig
from repro.data import make_dataset
from repro.evaluation.experiment import DEFAULT_EXPERIMENT_CONFIG
from repro.index import TreeParameters


def _training_data(size=600, seed=0):
    dataset = make_dataset("pendigits", size=size, random_state=seed)
    return dataset


def test_bench_iterative_insertion(benchmark):
    """Cost of inserting one object into an existing Bayes tree (online learning)."""
    dataset = _training_data()
    tree = BayesTree(dimension=dataset.n_features, config=DEFAULT_EXPERIMENT_CONFIG)
    tree.fit(dataset.features[:400])
    new_points = dataset.features[400:]
    counter = {"i": 0}

    def insert_one():
        point = new_points[counter["i"] % len(new_points)]
        counter["i"] += 1
        tree.insert(point)

    benchmark(insert_one)
    assert tree.n_objects > 400


def test_bench_anytime_classification_20_nodes(benchmark):
    """Latency of one anytime classification with a 20-node budget."""
    dataset = _training_data()
    classifier = AnytimeBayesClassifier(config=DEFAULT_EXPERIMENT_CONFIG)
    classifier.fit(dataset.features[:500], dataset.labels[:500])
    queries = dataset.features[500:]
    counter = {"i": 0}

    def classify_one():
        query = queries[counter["i"] % len(queries)]
        counter["i"] += 1
        return classifier.classify_anytime(query, max_nodes=20)

    result = benchmark(classify_one)
    assert result.nodes_read <= 20


def test_bench_scalar_vs_vectorized_full_refinement(benchmark):
    """Throughput of batched full-refinement classification vs the scalar loop.

    The scalar path classifies one query at a time by descending every class
    tree to full refinement; the vectorised path evaluates each class's packed
    leaf arrays for all queries in one batched log-space call.  Predictions
    must be identical and the batch path at least 5x faster (it is typically
    two orders of magnitude faster).
    """
    dataset = _training_data()
    classifier = AnytimeBayesClassifier(config=DEFAULT_EXPERIMENT_CONFIG)
    classifier.fit(dataset.features[:500], dataset.labels[:500])
    queries = dataset.features[500:]

    start = time.perf_counter()
    scalar_predictions = [classifier.predict(query) for query in queries]
    scalar_seconds = time.perf_counter() - start

    vectorized_predictions = benchmark(classifier.predict_batch, queries)
    assert vectorized_predictions == scalar_predictions
    if benchmark.stats is None:
        return  # --benchmark-disable: no timings to gate on, identity checked
    # The minimum round is the least noise-sensitive statistic on shared CI
    # runners; the real margin is ~two orders of magnitude, the 5x gate only
    # guards against the vectorised path silently degenerating to a loop.
    vectorized_seconds = benchmark.stats.stats.min
    speedup = scalar_seconds / vectorized_seconds
    print(
        f"\nfull-refinement classification of {len(queries)} queries: "
        f"scalar {scalar_seconds:.3f}s, vectorized {vectorized_seconds:.4f}s, "
        f"speedup {speedup:.0f}x"
    )
    assert speedup >= 5.0


def test_bench_batch_anytime_classification_20_nodes(benchmark):
    """Throughput of the lockstep batch driver with a 20-node budget."""
    dataset = _training_data()
    classifier = AnytimeBayesClassifier(config=DEFAULT_EXPERIMENT_CONFIG)
    classifier.fit(dataset.features[:500], dataset.labels[:500])
    queries = dataset.features[500:]

    results = benchmark.pedantic(
        classifier.classify_anytime_batch, args=(queries, 20), rounds=3, iterations=1
    )
    assert len(results) == len(queries)
    assert all(result.nodes_read <= 20 for result in results)


@pytest.mark.parametrize("strategy", ["iterative", "hilbert", "em_topdown", "goldberger"])
def test_bench_bulk_load_construction(benchmark, strategy):
    """Construction time of one per-class Bayes tree for each bulk load."""
    dataset = _training_data(size=400, seed=1)
    class_points = dataset.features[dataset.labels == 0]
    kwargs = {"random_state": 0} if strategy == "em_topdown" else {}
    loader = make_bulk_loader(strategy, config=DEFAULT_EXPERIMENT_CONFIG, **kwargs)

    tree = benchmark.pedantic(loader.build_tree, args=(class_points,), rounds=3, iterations=1)
    assert tree.n_objects == len(class_points)


def test_bench_clustree_insertion(benchmark):
    """Cost of one anytime clustering insertion (unlimited descent)."""
    rng = np.random.default_rng(2)
    points = rng.normal(size=(2000, 4)) + rng.integers(0, 3, size=(2000, 1)) * 6.0
    tree = ClusTree(dimension=4, fanout=4, decay_rate=0.01)
    for t in range(500):
        tree.insert(points[t], timestamp=float(t))
    counter = {"t": 500}

    def insert_one():
        t = counter["t"]
        counter["t"] += 1
        tree.insert(points[t % len(points)], timestamp=float(t))

    benchmark(insert_one)
    assert tree.n_inserted > 500
