"""Micro-benchmarks of the core operations.

These are classic timing benchmarks (pytest-benchmark with several rounds) for
the operations whose costs the paper reasons about: inserting a new training
object (incremental learning, §2.2), answering a probability density query
with a fixed node budget (anytime classification), building the per-class
trees with the different bulk loads (§3.1), and one anytime clustering
insertion (§4.2), plus the scalar-vs-vectorised comparison of the log-space
batch query engine (DESIGN.md, batch API).
"""

import time

import numpy as np
import pytest

from repro.bulkload import make_bulk_loader
from repro.clustering import ClusTree
from repro.core import AnytimeBayesClassifier, BayesTree, BayesTreeConfig
from repro.data import make_blobs, make_dataset
from repro.evaluation.experiment import DEFAULT_EXPERIMENT_CONFIG
from repro.index import TreeParameters
from repro.stats import silverman_bandwidth
from repro.stream import ConstantArrival, DataStream, run_anytime_stream


def _training_data(size=600, seed=0):
    dataset = make_dataset("pendigits", size=size, random_state=seed)
    return dataset


def test_bench_iterative_insertion(benchmark):
    """Cost of inserting one object into an existing Bayes tree (online learning)."""
    dataset = _training_data()
    tree = BayesTree(dimension=dataset.n_features, config=DEFAULT_EXPERIMENT_CONFIG)
    tree.fit(dataset.features[:400])
    new_points = dataset.features[400:]
    counter = {"i": 0}

    def insert_one():
        point = new_points[counter["i"] % len(new_points)]
        counter["i"] += 1
        tree.insert(point)

    benchmark(insert_one)
    assert tree.n_objects > 400


def test_bench_anytime_classification_20_nodes(benchmark):
    """Latency of one anytime classification with a 20-node budget."""
    dataset = _training_data()
    classifier = AnytimeBayesClassifier(config=DEFAULT_EXPERIMENT_CONFIG)
    classifier.fit(dataset.features[:500], dataset.labels[:500])
    queries = dataset.features[500:]
    counter = {"i": 0}

    def classify_one():
        query = queries[counter["i"] % len(queries)]
        counter["i"] += 1
        return classifier.classify_anytime(query, max_nodes=20)

    result = benchmark(classify_one)
    assert result.nodes_read <= 20


def test_bench_scalar_vs_vectorized_full_refinement(benchmark):
    """Throughput of batched full-refinement classification vs the scalar loop.

    The scalar path classifies one query at a time by descending every class
    tree to full refinement; the vectorised path evaluates each class's packed
    leaf arrays for all queries in one batched log-space call.  Predictions
    must be identical and the batch path at least 5x faster (it is typically
    two orders of magnitude faster).
    """
    dataset = _training_data()
    classifier = AnytimeBayesClassifier(config=DEFAULT_EXPERIMENT_CONFIG)
    classifier.fit(dataset.features[:500], dataset.labels[:500])
    queries = dataset.features[500:]

    start = time.perf_counter()
    scalar_predictions = [classifier.predict(query) for query in queries]
    scalar_seconds = time.perf_counter() - start

    vectorized_predictions = benchmark(classifier.predict_batch, queries)
    assert vectorized_predictions == scalar_predictions
    if benchmark.stats is None:
        return  # --benchmark-disable: no timings to gate on, identity checked
    # The minimum round is the least noise-sensitive statistic on shared CI
    # runners; the real margin is ~two orders of magnitude, the 5x gate only
    # guards against the vectorised path silently degenerating to a loop.
    vectorized_seconds = benchmark.stats.stats.min
    speedup = scalar_seconds / vectorized_seconds
    print(
        f"\nfull-refinement classification of {len(queries)} queries: "
        f"scalar {scalar_seconds:.3f}s, vectorized {vectorized_seconds:.4f}s, "
        f"speedup {speedup:.0f}x"
    )
    assert speedup >= 5.0


def test_bench_batch_anytime_classification_20_nodes(benchmark):
    """Throughput of the lockstep batch driver with a 20-node budget."""
    dataset = _training_data()
    classifier = AnytimeBayesClassifier(config=DEFAULT_EXPERIMENT_CONFIG)
    classifier.fit(dataset.features[:500], dataset.labels[:500])
    queries = dataset.features[500:]

    results = benchmark.pedantic(
        classifier.classify_anytime_batch, args=(queries, 20), rounds=3, iterations=1
    )
    assert len(results) == len(queries)
    assert all(result.nodes_read <= 20 for result in results)


@pytest.mark.parametrize("strategy", ["iterative", "hilbert", "em_topdown", "goldberger"])
def test_bench_bulk_load_construction(benchmark, strategy):
    """Construction time of one per-class Bayes tree for each bulk load."""
    dataset = _training_data(size=400, seed=1)
    class_points = dataset.features[dataset.labels == 0]
    kwargs = {"random_state": 0} if strategy == "em_topdown" else {}
    loader = make_bulk_loader(strategy, config=DEFAULT_EXPERIMENT_CONFIG, **kwargs)

    tree = benchmark.pedantic(loader.build_tree, args=(class_points,), rounds=3, iterations=1)
    assert tree.n_objects == len(class_points)


#: Tree parameters of the streaming benchmarks: a page-sized fanout keeps the
#: trees shallow under sustained insertion (DESIGN.md, incremental maintenance).
_STREAM_TREE = TreeParameters(max_fanout=16, min_fanout=6, leaf_capacity=32, leaf_min=12)


class _PerInsertRefreshClassifier(AnytimeBayesClassifier):
    """Emulation of the historical Θ(n²) online-learning path (pre-ISSUE-2).

    ``partial_fit`` used to re-run Silverman's rule over the *full* training
    set and restamp a bandwidth copy onto every leaf entry after each insert.
    The emulation reproduces exactly that per-insert work on top of today's
    (much faster) index substrate, so the measured ratio is a conservative
    lower bound on the true historical regression: the pre-PR code measured
    ~123s on this exact 10k workload vs ~8s for the incremental driver (15x,
    see DESIGN.md, incremental maintenance).
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._point_lists = {}

    def seed(self, features, labels):
        self.fit(features, labels)
        for label, tree in self.trees.items():
            self._point_lists[label] = [
                entry.point for entry in tree.index.iter_leaf_entries()
            ]

    def partial_fit(self, point, label, timestamp=None):
        super().partial_fit(point, label, timestamp=timestamp)
        tree = self.trees[label]
        points = self._point_lists.setdefault(label, [])
        points.append(np.asarray(point, dtype=float))
        bandwidth = silverman_bandwidth(np.asarray(points, dtype=float))
        for entry in tree.index.iter_leaf_entries():
            entry.bandwidth = bandwidth
            entry.kernel = tree.config.kernel


def _stream_items(total, d=16, budget=4, seed=7):
    dataset = make_blobs(n_classes=2, per_class=(total + 64) // 2 + 1, n_features=d, random_state=seed)
    stream = DataStream(
        dataset, arrival=ConstantArrival(gap=1.0), nodes_per_time_unit=budget, random_state=seed
    )
    return stream.items(total + 64)


def _warm_classifier(items, cls=AnytimeBayesClassifier):
    classifier = cls(config=BayesTreeConfig(tree=_STREAM_TREE))
    warm = items[:64]
    features = np.stack([item.features for item in warm])
    labels = [item.label for item in warm]
    if isinstance(classifier, _PerInsertRefreshClassifier):
        classifier.seed(features, labels)
    else:
        classifier.fit(features, labels)
    return classifier


def test_bench_stream_test_then_train_10k(benchmark):
    """10k-object micro-batched test-then-train run (ISSUE 2 tentpole gate).

    Times the incremental driver (batched classification + O(d) bandwidth
    maintenance) over 10k streamed objects and compares it against the
    per-insert-refresh emulation driven the historical way (sequential scalar
    classification, full Silverman + restamp per insert).  The legacy cost is
    sampled at the run's average model size (~5k objects) and extrapolated
    linearly — an *underestimate*, since the legacy per-item cost grows with
    the training-set size.  Identity of the batched and the scalar driver is
    asserted on a 1k-object prefix.
    """
    items = _stream_items(10_000)
    rest = items[64:]

    timings = {}

    def run_new():
        classifier = _warm_classifier(items)
        start = time.perf_counter()
        result = run_anytime_stream(
            classifier, rest, online_learning=True, chunk_size=128
        )
        timings["new"] = time.perf_counter() - start
        return result

    result = benchmark.pedantic(run_new, rounds=1, iterations=1)
    assert len(result.steps) == 10_000
    new_seconds = timings["new"]

    # Trace identity: batched micro-batches == sequential scalar driver.
    prefix = rest[:1000]
    batched = run_anytime_stream(
        _warm_classifier(items), prefix, online_learning=True, chunk_size=64, use_batch=True
    )
    scalar = run_anytime_stream(
        _warm_classifier(items), prefix, online_learning=True, chunk_size=64, use_batch=False
    )
    assert [s.prediction for s in batched.steps] == [s.prediction for s in scalar.steps]
    assert [s.nodes_read for s in batched.steps] == [s.nodes_read for s in scalar.steps]

    # Legacy per-insert-refresh cost at the run's average model size.
    legacy = _PerInsertRefreshClassifier(config=BayesTreeConfig(tree=_STREAM_TREE))
    seed_items = items[:5064]
    legacy.seed(
        np.stack([item.features for item in seed_items]),
        [item.label for item in seed_items],
    )
    sample = items[5064:5464]
    start = time.perf_counter()
    run_anytime_stream(legacy, sample, online_learning=True, chunk_size=1, use_batch=False)
    legacy_per_item = (time.perf_counter() - start) / len(sample)
    legacy_estimate = legacy_per_item * 10_000

    speedup = legacy_estimate / new_seconds
    print(
        f"\n10k test-then-train: incremental {new_seconds:.2f}s, "
        f"per-insert-refresh >= {legacy_estimate:.1f}s (sampled at n~5k), "
        f"same-substrate speedup >= {speedup:.1f}x "
        "(vs the actual pre-PR code: ~123s, ~15x)"
    )
    # Conservative same-substrate gate; the historical comparison is pinned by
    # the isolated maintenance gate below and the numbers recorded in DESIGN.md.
    assert speedup >= 2.0


def test_bench_bandwidth_maintenance_incremental_vs_refresh(benchmark):
    """Per-insert model maintenance at n=10k: running stats vs full refresh.

    Isolates the training-side primitive ISSUE 2 replaced: the incremental
    O(d) sufficient-statistics update must beat the historical
    full-training-set refresh (Silverman re-scan + leaf restamp) by >=10x at
    10k objects — it is in fact ~100x.  Guards against training-side
    regressions the way the scalar-vs-vectorized gate guards the query side.
    """
    rng = np.random.default_rng(11)
    points = rng.normal(size=(10_256, 16))
    tree = BayesTree(dimension=16, config=BayesTreeConfig(tree=_STREAM_TREE))
    tree.fit(points[:10_000])

    def incremental_inserts():
        # Best of three 64-insert windows: the incremental side is tens of
        # milliseconds, so a single scheduler stall on a shared CI runner
        # could otherwise dominate it and flake the ratio gate below.
        best = np.inf
        for round_index in range(3):
            chunk = points[10_000 + 64 * round_index : 10_064 + 64 * round_index]
            start = time.perf_counter()
            for point in chunk:
                tree.insert(point)
            best = min(best, (time.perf_counter() - start) / 64)
        return best

    incremental_seconds = benchmark.pedantic(incremental_inserts, rounds=1, iterations=1)

    def legacy_refresh_insert(point):
        """The historical per-insert work: full Silverman re-scan + restamp."""
        tree.insert(point)
        tree.recompute_statistics()
        bandwidth = tree.bandwidth
        for entry in tree.index.iter_leaf_entries():
            entry.bandwidth = bandwidth
            entry.kernel = tree.config.kernel

    start = time.perf_counter()
    for point in points[10_192:10_256]:
        legacy_refresh_insert(point)
    refresh_seconds = (time.perf_counter() - start) / 64

    ratio = refresh_seconds / incremental_seconds
    print(
        f"\nper-insert maintenance at n=10k: incremental {incremental_seconds*1e3:.3f} ms, "
        f"full refresh {refresh_seconds*1e3:.3f} ms, ratio {ratio:.0f}x"
    )
    assert ratio >= 10.0


def test_bench_clustree_insertion(benchmark):
    """Cost of one anytime clustering insertion (unlimited descent)."""
    rng = np.random.default_rng(2)
    points = rng.normal(size=(2000, 4)) + rng.integers(0, 3, size=(2000, 1)) * 6.0
    tree = ClusTree(dimension=4, fanout=4, decay_rate=0.01)
    for t in range(500):
        tree.insert(points[t], timestamp=float(t))
    counter = {"t": 500}

    def insert_one():
        t = counter["t"]
        counter["t"] += 1
        tree.insert(points[t % len(points)], timestamp=float(t))

    benchmark(insert_one)
    assert tree.n_inserted > 500
