"""Ablation A2 — the qbk improvement strategy (paper §2.2).

The paper refines the k most probable classes in turns and reports k = 2 as
the best choice across its data sets.  This bench sweeps k on the covertype
stand-in (7 classes) and checks that k = 2 is at least as good as greedy
refinement of only the top class (k = 1) and as spreading the budget over many
classes (k = 4).
"""

import numpy as np
from conftest import print_heading, run_once

from repro.evaluation import ExperimentConfig, run_bulkload_experiment

K_VALUES = (1, 2, 4)


def run_qbk_sweep():
    results = {}
    for k in K_VALUES:
        config = ExperimentConfig(
            dataset="covertype",
            size=900,
            max_nodes=60,
            n_folds=3,
            strategies=("em_topdown",),
            descents=("glo",),
            qbk_k=k,
            max_test_objects=25,
            random_state=2,
        )
        results[k] = run_bulkload_experiment(config).mean_curve("em_topdown", "glo")
    return results


def test_ablation_qbk_k(benchmark):
    curves = run_once(benchmark, run_qbk_sweep)

    print_heading("Ablation A2 — qbk: number of refined classes k (covertype, EM top-down)")
    header = "k".ljust(6) + "".join(f"n={n}".rjust(9) for n in (0, 10, 20, 40, 60)) + "     mean"
    print(header)
    for k, curve in sorted(curves.items()):
        cells = "".join(f"{curve[n]:9.3f}" for n in (0, 10, 20, 40, 60))
        print(f"{k:<6d}" + cells + f"{curve.mean():9.3f}")

    means = {k: curve.mean() for k, curve in curves.items()}
    for curve in curves.values():
        assert np.all((0.0 <= curve) & (curve <= 1.0))
        # All k start from the same root models.
        assert curve[0] == curves[2][0]

    # The paper's choice k = 2 is at least as good as the alternatives (up to noise).
    assert means[2] >= means[1] - 0.03
    assert means[2] >= means[4] - 0.03
