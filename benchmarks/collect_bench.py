#!/usr/bin/env python
"""Collect the repo's benchmark metrics into a machine-readable JSON file.

Run from the repository root::

    PYTHONPATH=src python benchmarks/collect_bench.py --output BENCH_pr5.json

The file feeds the CI benchmark-regression gate (``check_regression.py``),
which compares it against the committed ``benchmarks/baseline.json``.

Metric design: shared CI runners vary wildly in absolute speed, so every
timing metric is either a *ratio of two timings on the same machine*
(``batch_speedup_vs_scalar``) or *normalised by a calibration workload*
(a fixed numpy-heavy loop timed in the same process).  Accuracy metrics are
fully deterministic (seeded generators, seeded streams).
"""

from __future__ import annotations

from typing import Optional, Sequence

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.core import AnytimeBayesClassifier  # noqa: E402
from repro.data import make_dataset  # noqa: E402
from repro.evaluation import run_drift_recovery_experiment, run_scenario_battery  # noqa: E402
from repro.evaluation.experiment import DEFAULT_EXPERIMENT_CONFIG  # noqa: E402
from repro.scenarios import SMOKE_SCENARIOS  # noqa: E402
from repro.stream import DataStream, run_anytime_stream  # noqa: E402

from serving_load import (  # noqa: E402
    build_labelled_tail,
    build_serving_snapshot,
    run_flat_descent_comparison,
    run_frontend_closed_loop,
    run_frontend_open_loop,
    run_frontend_trace_identity,
    run_serving_load,
    run_warm_start_comparison,
)
from tenant_churn import run_registry_trace_identity, run_tenant_churn_soak  # noqa: E402
from tenant_fairness import run_two_tenant_starvation  # noqa: E402

SCHEMA = 1


def _calibration_seconds() -> float:
    """Time a fixed numpy workload — the machine-speed yardstick.

    All wall-clock metrics are divided by this, so a uniformly 2x-slower CI
    runner reports (to first order) the same normalised numbers.
    """
    def once() -> float:
        rng = np.random.default_rng(0)
        a = rng.normal(size=(400, 400))
        small = rng.normal(size=(64, 8))
        start = time.perf_counter()
        for _ in range(8):
            b = a @ a
            b = np.exp(b / (1.0 + np.abs(b)))
            a = b / np.linalg.norm(b)
            # Small-array churn: the tree hot paths are dominated by many
            # tiny numpy calls, not by large BLAS kernels.
            for _ in range(200):
                (small * small).sum(axis=0)
        return time.perf_counter() - start

    # Min of three: the least contention-sensitive statistic on shared runners.
    return min(once() for _ in range(3))


def _classification_metrics() -> dict:
    """Full-refinement batch classification throughput and speedup."""
    dataset = make_dataset("pendigits", size=600, random_state=0)
    classifier = AnytimeBayesClassifier(config=DEFAULT_EXPERIMENT_CONFIG)
    classifier.fit(dataset.features[:500], dataset.labels[:500])
    queries = dataset.features[500:]

    start = time.perf_counter()
    scalar = [classifier.predict(query) for query in queries]
    scalar_seconds = time.perf_counter() - start

    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        batch = classifier.predict_batch(queries)
        best = min(best, time.perf_counter() - start)
    assert batch == scalar, "batch and scalar predictions diverged"
    return {
        "batch_seconds": best,
        "throughput_qps": len(queries) / best,
        "speedup": scalar_seconds / best,
    }


def _stream_metrics() -> dict:
    """Wall-clock of the micro-batched test-then-train stream driver (min of 2)."""
    dataset = make_dataset("pendigits", size=1500, random_state=1)
    tail = type(dataset)(
        dataset.name, dataset.features[64:], dataset.labels[64:], dataset.n_classes
    )

    def once() -> tuple:
        classifier = AnytimeBayesClassifier(config=DEFAULT_EXPERIMENT_CONFIG)
        classifier.fit(dataset.features[:64], dataset.labels[:64])
        stream = DataStream(tail, random_state=2)
        start = time.perf_counter()
        result = run_anytime_stream(classifier, stream, online_learning=True, chunk_size=64)
        return time.perf_counter() - start, result

    seconds, result = min((once() for _ in range(2)), key=lambda pair: pair[0])
    return {"seconds": seconds, "accuracy": result.accuracy, "objects": len(result.steps)}


def _serving_metrics() -> dict:
    """Sharded serving throughput: 1-worker baseline and 4-worker scaling.

    The load is identical for every configuration (tiled 512-query blocks),
    so the 4-vs-1 worker ratio is a pure same-machine scaling number.  On
    hosts with fewer than 4 cores the ratio is physically meaningless; it is
    still reported, but the regression gate skips it there (``min_cores``).
    """
    with tempfile.TemporaryDirectory() as tmpdir:
        snapshot = Path(tmpdir) / "forest.npz"
        queries = build_serving_snapshot(
            snapshot, train_size=2400, query_size=512, random_state=0
        )
        one = run_serving_load(snapshot, workers=1, queries=queries, batches=8, warmup=2)
        four = run_serving_load(snapshot, workers=4, queries=queries, batches=8, warmup=2)
    return {
        "qps_1w": one["qps"],
        "qps_4w": four["qps"],
        "speedup_4w": four["qps"] / one["qps"],
        "p99_ms_1w": one["p99_ms"],
    }


def _frontend_metrics() -> dict:
    """Async front-end: trace identity, closed-loop throughput, adaptive depth.

    Runs on the ``workers=0`` in-process engine so every number is meaningful
    on single-core runners.  The adaptive ratio divides the mean node budget
    granted under light open-loop load (40 req/s) by the mean under burst
    load (4000 req/s) on the *same machine* — the paper's anytime tradeoff as
    a serving policy; a broken estimator or policy collapses it towards 1.
    """
    with tempfile.TemporaryDirectory() as tmpdir:
        snapshot = Path(tmpdir) / "forest.npz"
        queries = build_serving_snapshot(
            snapshot, train_size=1600, query_size=256, random_state=0
        )
        tail = build_labelled_tail(train_size=1600, tail_size=200, random_state=0)
        identity = run_frontend_trace_identity(snapshot, queries[:96], node_budget=8)
        closed = run_frontend_closed_loop(snapshot, queries, batches=6, warmup=1)
        slow = run_frontend_open_loop(snapshot, tail, speed=40.0, limit=120)
        burst = run_frontend_open_loop(snapshot, tail, speed=4000.0, limit=120)
    return {
        "trace_identical": identity["identical"],
        "trace_hash": identity["trace_hash"],
        "qps": closed["qps"],
        "p99_ms": closed["p99_ms"],
        "mean_budget_slow": slow["mean_node_budget"],
        "mean_budget_burst": burst["mean_node_budget"],
        "accuracy_slow": slow["accuracy"],
        "accuracy_burst": burst["accuracy"],
        "latency_p99_slow_ms": slow["latency_ms"]["p99"],
        "latency_p99_burst_ms": burst["latency_ms"]["p99"],
    }


def _flat_metrics() -> dict:
    """Flat-forest encoding: descent speedup, trace identity, warm-start/RSS.

    The descent comparison runs entirely in-process (``workers=0``-style), so
    its numbers are meaningful on any core count.  The warm-start comparison
    spins up two 4-worker engines — zero-copy shared memory vs per-worker
    object loading — and compares per-worker attach latency and private RSS;
    raw warm-start milliseconds are host-dependent, so the regression gate
    applies the ``min_cores`` rule to them while the in-process speedup and
    the deterministic trace identity gate everywhere.
    """
    with tempfile.TemporaryDirectory() as tmpdir:
        snapshot = Path(tmpdir) / "forest.npz"
        queries = build_serving_snapshot(
            snapshot, train_size=1600, query_size=256, random_state=0
        )
        descent = run_flat_descent_comparison(
            snapshot, queries[:128], max_nodes=20, repeats=3
        )
        warm_start = run_warm_start_comparison(snapshot, queries, workers=4)
    return {"descent": descent, "warm_start": warm_start}


def _tenant_metrics() -> dict:
    """Multi-tenant registry: churn-bounded memory, cold loads, trace identity.

    The churn soak rotates 32 tenants through a 4-entry LRU registry — every
    round to a non-resident tenant is a cold reload plus an eviction — and
    reports whether resident shared-memory bytes stayed within the capacity
    bound and whether every evicted segment was actually unlinked (both
    deterministic verdicts).  The identity run then serves the PR 6
    fixed-budget batch through a registry-only deployment over *both* HTTP
    route families (legacy alias and ``/v1``), requiring byte-identical
    payloads and the unchanged single-tenant classification trace hash.
    """
    with tempfile.TemporaryDirectory() as tmpdir:
        snapshots = []
        for index in range(4):
            snapshot = Path(tmpdir) / f"tenant-{index}.npz"
            build_serving_snapshot(
                snapshot, train_size=600, query_size=64, random_state=index
            )
            snapshots.append(snapshot)
        main_snapshot = Path(tmpdir) / "forest.npz"
        queries = build_serving_snapshot(
            main_snapshot, train_size=1600, query_size=256, random_state=0
        )
        churn = run_tenant_churn_soak(
            snapshots, queries, n_tenants=32, capacity=4, rounds=96, batch=32
        )
        identity = run_registry_trace_identity(main_snapshot, queries[:96], node_budget=8)
    return {"churn": churn, "identity": identity}


def _fairness_metrics() -> dict:
    """Two-tenant starvation: DRR fairness under a 50x hot-tenant storm.

    The background tenant replays the same stream twice through identically
    configured deployments — once alone, once while the hot tenant offers
    50x its load — so both gate numbers are same-machine ratios: the served
    fraction of background requests under contention (1.0 unless the
    scheduler starves it into deadline misses) and the background p99 over
    its solo baseline (a broken scheduler parks background requests behind
    the hot backlog and blows this up by orders of magnitude, not percent).
    """
    with tempfile.TemporaryDirectory() as tmpdir:
        snapshot = Path(tmpdir) / "forest.npz"
        build_serving_snapshot(snapshot, train_size=800, query_size=128, random_state=0)
        tail = build_labelled_tail(train_size=800, tail_size=160, random_state=0)
        return run_two_tenant_starvation(snapshot, tail)


def _scenario_metrics() -> dict:
    """Scenario-battery smoke headline numbers (fully deterministic).

    Runs the smoke scenario subset at reduced stream scale — the same run
    the CI docs job renders into the published report — and extracts the
    forest win rate over every ``(scenario, budget)`` cell plus two
    per-scenario anchors: the forest's budget-averaged holdout accuracy on
    the high-dimensional kernels scenario and its prequential accuracy under
    collapsing budgets on the adversarial-burst scenario.  Seeded specs plus
    deterministic classifiers make all three exactly reproducible.
    """
    battery = run_scenario_battery(SMOKE_SCENARIOS, size_scale=0.25)
    highdim = battery.outcome("highdim_kernels")
    bursts = battery.outcome("adversarial_bursts")
    return {
        "forest_win_rate": battery.forest_win_rate,
        "highdim_forest_auc": highdim.forest_auc,
        "bursts_forest_prequential": bursts.prequential["bayes_forest"],
    }


def collect() -> dict:
    calibration = _calibration_seconds()
    classification = _classification_metrics()
    stream = _stream_metrics()
    serving = _serving_metrics()
    frontend = _frontend_metrics()
    flat = _flat_metrics()
    tenant = _tenant_metrics()
    fairness = _fairness_metrics()
    scenarios = _scenario_metrics()
    drift = run_drift_recovery_experiment(
        size=600, warmup=64, window=100, decay_rate=0.02, expiry_threshold=1e-3, random_state=0
    )

    metrics = {
        "classification_throughput_norm": {
            "value": classification["throughput_qps"] * calibration,
            "direction": "higher",
            "note": "full-refinement queries/s x calibration seconds (machine-normalised)",
        },
        "batch_speedup_vs_scalar": {
            "value": classification["speedup"],
            "direction": "higher",
            "note": "vectorised predict_batch vs scalar predict loop (dimensionless)",
        },
        "stream_wallclock_norm": {
            "value": stream["seconds"] / calibration,
            "direction": "lower",
            "note": "1436-object test-then-train wall-clock / calibration seconds",
        },
        "stream_accuracy": {
            "value": stream["accuracy"],
            "direction": "higher",
            "note": "prequential accuracy of the stationary test-then-train run (deterministic)",
        },
        "drift_recovery_accuracy": {
            "value": drift.decayed_post_drift_accuracy,
            "direction": "higher",
            "note": "decayed forest post-drift sliding-window accuracy (deterministic)",
        },
        "drift_recovery_gain": {
            "value": drift.recovery_gain,
            "direction": "higher",
            "note": "decayed minus plain post-drift accuracy (deterministic)",
        },
        "serving_throughput_1w_norm": {
            "value": serving["qps_1w"] * calibration,
            "direction": "higher",
            "note": "1-worker sharded serving queries/s x calibration seconds (machine-normalised)",
        },
        "serving_speedup_4w_vs_1w": {
            "value": serving["speedup_4w"],
            "direction": "higher",
            "note": "4-worker vs 1-worker serving throughput (same machine; needs >=4 cores)",
        },
        "frontend_trace_identical": {
            "value": 1.0 if frontend["trace_identical"] else 0.0,
            "direction": "higher",
            "note": "async front-end fixed-budget predictions == engine == lockstep trace (deterministic)",
        },
        "frontend_throughput_norm": {
            "value": frontend["qps"] * calibration,
            "direction": "higher",
            "note": "closed-loop async front-end queries/s x calibration seconds (machine-normalised)",
        },
        "frontend_adaptive_budget_ratio": {
            "value": frontend["mean_budget_slow"] / frontend["mean_budget_burst"],
            "direction": "higher",
            "note": "mean adaptive node budget at 40 req/s over 4000 req/s (same machine)",
        },
        "flat_trace_identical": {
            "value": 1.0 if flat["descent"]["identical"] else 0.0,
            "direction": "higher",
            "note": "flat-column anytime trace hash == object-graph trace hash (deterministic)",
        },
        "flat_descent_speedup": {
            "value": flat["descent"]["speedup"],
            "direction": "higher",
            "note": "object-graph over flat-column classify_anytime_batch wall-clock (same machine, in-process)",
        },
        "tenant_churn_bounded": {
            "value": (
                1.0
                if (
                    tenant["churn"]["bounded"]
                    and tenant["churn"]["leaked_segments"] == 0
                    and tenant["churn"]["leaked_after_close"] == 0
                )
                else 0.0
            ),
            "direction": "higher",
            "note": (
                "32-tenant churn over a 4-entry registry: resident shm bytes within "
                "capacity bound AND zero leaked segments (deterministic; 1.0 or broken)"
            ),
        },
        "tenant_trace_identical": {
            "value": 1.0 if tenant["identity"]["identical"] else 0.0,
            "direction": "higher",
            "note": (
                "registry-served fixed-budget batch byte-identical across legacy and /v1 "
                "routes and equal to the lockstep trace predictions (deterministic; 1.0 or broken)"
            ),
        },
        "tenant_churn_p99_norm": {
            "value": tenant["churn"]["p99_ms"] / 1000.0 / calibration,
            "direction": "lower",
            "note": "p99 round latency under tenant churn / calibration seconds (cold reloads included)",
        },
        "tenant_cold_load_norm": {
            "value": tenant["churn"]["cold_load_ms_mean"] / 1000.0 / calibration,
            "direction": "lower",
            "note": "mean cold tenant load (manifest read + compile + shm publish) / calibration seconds",
        },
        "tenant_starvation_completion": {
            "value": fairness["background_completion"],
            "direction": "higher",
            "note": (
                "background tenant's served fraction under a 50x hot-tenant storm "
                "(deadline-bounded; 1.0 unless the scheduler starves it)"
            ),
        },
        "tenant_fairness_p99_norm": {
            "value": fairness["p99_ratio"],
            "direction": "lower",
            "note": (
                "background p99 under the 50x storm over its solo-baseline p99 "
                "(same machine, same client config; starvation blows this up)"
            ),
        },
        "scenario_forest_win_rate": {
            "value": scenarios["forest_win_rate"],
            "direction": "higher",
            "note": (
                "smoke scenario battery: fraction of (scenario, budget) cells where the "
                "forest matches or beats every baseline (deterministic)"
            ),
        },
        "scenario_highdim_forest_auc": {
            "value": scenarios["highdim_forest_auc"],
            "direction": "higher",
            "note": "forest budget-averaged holdout accuracy on the 120-d kernels scenario (deterministic)",
        },
        "scenario_bursts_forest_prequential": {
            "value": scenarios["bursts_forest_prequential"],
            "direction": "higher",
            "note": "forest prequential accuracy under adversarial burst budgets (deterministic)",
        },
        "worker_warm_start_ms": {
            "value": flat["warm_start"]["zero_copy"]["warm_start_ms_mean"],
            "direction": "lower",
            "note": "mean zero-copy worker warm-start (shm attach + wrapper build), ms; host-dependent so gated to >=4 cores",
        },
    }
    return {
        "schema": SCHEMA,
        "calibration_s": calibration,
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "metrics": metrics,
        # Full front-end detail for the PR 5 acceptance record: the fixed-
        # budget trace hash shared by the front-end / engine / lockstep
        # driver, and the adaptive-budget depth + accuracy/latency at both
        # arrival rates (deeper refinement when the stream is light).
        "frontend": frontend,
        # Full flat-forest detail for the PR 6 acceptance record: the
        # trace-identity hash and descent timings, plus the 4-worker
        # zero-copy vs object-loading comparison (per-worker warm-start
        # latency and shared/private RSS split from /proc).
        "flat": flat,
        # Multi-tenant registry detail for the PR 9 acceptance record: the
        # full churn-soak report (bounded-memory and no-leak verdicts, cold
        # reload latencies) and the both-route-families trace-identity run
        # whose hash must match the PR 6 single-tenant front-end hash.
        "tenant": tenant,
        # Fairness battery detail for the admission-control acceptance
        # record: the solo and contended background trace summaries, the
        # hot tenant's rejection mix, and the client's DRR admission
        # snapshot (per-tenant granted shares and deficit counters).
        "fairness": fairness,
        # Scenario-battery headline detail (smoke subset; the full battery
        # runs nightly and in the published docs report).
        "scenarios": scenarios,
    }


def main(argv: "Optional[Sequence[str]]" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_pr9.json", help="where to write the JSON report")
    args = parser.parse_args(argv)
    report = collect()
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    for name, metric in report["metrics"].items():
        print(f"  {name:32s} {metric['value']:12.4f} ({metric['direction']} is better)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
