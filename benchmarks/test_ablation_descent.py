"""Ablation A1 — descent strategies (paper §2.2).

The paper evaluates breadth-first, depth-first and global-best descent with a
geometric and a probabilistic priority measure and reports that global best
descent (probabilistic priority) performs best.  This bench compares all four
strategies on the pendigits stand-in with EM top-down bulk loading.
"""

import numpy as np
from conftest import print_heading, run_once

from repro.evaluation import ExperimentConfig, format_curve_table, run_bulkload_experiment

CONFIG = ExperimentConfig(
    dataset="pendigits",
    size=1000,
    max_nodes=60,
    n_folds=3,
    strategies=("em_topdown",),
    descents=("glo", "glo-geometric", "bft", "dft"),
    max_test_objects=25,
    random_state=1,
)


def test_ablation_descent_strategies(benchmark):
    result = run_once(benchmark, run_bulkload_experiment, CONFIG)

    print_heading("Ablation A1 — descent strategies on pendigits (EM top-down trees)")
    print(format_curve_table(result, nodes=(0, 5, 10, 20, 40, 60)))

    curves = {descent: result.mean_curve("em_topdown", descent) for _, descent in result.curves}
    means = {descent: curve.mean() for descent, curve in curves.items()}

    for descent, curve in curves.items():
        assert curve.shape == (CONFIG.max_nodes + 1,)
        assert np.all((0.0 <= curve) & (curve <= 1.0)), descent
        # All strategies start from the same root model.
        assert curve[0] == curves["glo"][0]

    # Global best (probabilistic priority) is the paper's best strategy; it
    # should not lose to breadth-first or depth-first traversal by more than
    # noise on the synthetic stand-in.
    assert means["glo"] >= means["bft"] - 0.03
    assert means["glo"] >= means["dft"] - 0.03

    # The probabilistic priority measure is at least as good as the geometric one.
    assert means["glo"] >= means["glo-geometric"] - 0.03
