#!/usr/bin/env python
"""Build the HTML API reference with pdoc, treating pdoc warnings as errors.

Renders the audited public surface (see ``docs/check_docstrings.py``,
``AUDITED_MODULES``) into ``docs/api`` and fails when pdoc emits *any*
warning — unresolvable references, broken links, modules it could not
import.  The CI ``docs`` job runs this after the dependency-free docstring
audit and uploads the HTML as a build artifact.

Run from the repository root (pdoc must be installed —
``pip install .[docs]``)::

    PYTHONPATH=src python docs/build_api_docs.py --output docs/api
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from check_docstrings import AUDITED_MODULES  # noqa: E402


def build(output: str) -> int:
    """Run pdoc over the audited modules; returns a process exit code."""
    environment = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    environment["PYTHONPATH"] = src + os.pathsep + environment.get("PYTHONPATH", "")
    command = [
        sys.executable,
        "-m",
        "pdoc",
        "--docformat",
        "restructuredtext",
        "--output-directory",
        output,
        *AUDITED_MODULES,
    ]
    print("$", " ".join(command))
    completed = subprocess.run(command, env=environment, capture_output=True, text=True)
    if completed.stdout:
        print(completed.stdout, end="")
    warnings = [line for line in completed.stderr.splitlines() if line.strip()]
    if completed.returncode != 0:
        print(completed.stderr, file=sys.stderr, end="")
        print(f"pdoc failed with exit code {completed.returncode}", file=sys.stderr)
        return completed.returncode
    if warnings:
        print("pdoc emitted warnings (treated as errors):", file=sys.stderr)
        for line in warnings:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"API reference written to {output} ({len(AUDITED_MODULES)} module trees, no warnings)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="docs/api", help="HTML output directory")
    args = parser.parse_args(argv)
    return build(args.output)


if __name__ == "__main__":
    raise SystemExit(main())
