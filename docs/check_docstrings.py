#!/usr/bin/env python
"""Docstring audit of the public API surface (the pdoc-documented modules).

Walks the audited packages/modules recursively and fails (exit 1, listing
every offender) when a public module, class, function, method or property
lacks a docstring.  "Public" means reachable without a leading underscore
at every path step; members merely re-exported from elsewhere are attributed
to their defining module and only checked when that module is itself under
audit (so ``numpy`` objects or stdlib re-exports never trip the gate).

This is the cheap, dependency-free half of the docs gate: it runs in tier-1
CI (``tests/docs/test_docstring_audit.py``) and locally without ``pdoc``
installed.  The CI ``docs`` job layers the real ``pdoc`` build on top
(``docs/build_api_docs.py``), which additionally fails on pdoc's own
warnings (broken references, unresolvable links).

Run from the repository root::

    PYTHONPATH=src python docs/check_docstrings.py
"""

from __future__ import annotations

import importlib
import inspect
import os
import pkgutil
import sys
from typing import Iterator, List, Tuple

#: The audited public surface — keep in sync with docs/build_api_docs.py
#: and the CI docs job.
AUDITED_MODULES = [
    "repro.core.classifier",
    "repro.persist",
    "repro.serving",
    "repro.stream",
    "repro.evaluation",
    "repro.scenarios",
    "repro.baselines",
    "repro.data.synthetic",
]


def _iter_module_names(root: str) -> Iterator[str]:
    """Yield ``root`` and, if it is a package, all public submodules."""
    yield root
    module = importlib.import_module(root)
    if hasattr(module, "__path__"):
        for info in pkgutil.walk_packages(module.__path__, prefix=root + "."):
            if any(part.startswith("_") for part in info.name.split(".")):
                continue
            yield info.name


def _is_audited(qualified_module: str) -> bool:
    return any(
        qualified_module == root or qualified_module.startswith(root + ".")
        for root in AUDITED_MODULES
    )


def _public_members(owner) -> List[Tuple[str, object]]:
    members = []
    for name, value in vars(owner).items():
        if name.startswith("_"):
            continue
        members.append((name, value))
    return members


def _check_callable(path: str, value, problems: List[str]) -> None:
    if not (value.__doc__ or "").strip():
        problems.append(f"{path}: missing docstring")


def _check_class(module_name: str, path: str, cls: type, problems: List[str]) -> None:
    if not (cls.__doc__ or "").strip():
        problems.append(f"{path}: missing class docstring")
    for name, member in _public_members(cls):
        member_path = f"{path}.{name}"
        if inspect.isfunction(member):
            _check_callable(member_path, member, problems)
        elif isinstance(member, property):
            getter = member.fget
            if getter is not None and not (member.__doc__ or getter.__doc__ or "").strip():
                problems.append(f"{member_path}: missing property docstring")
        elif isinstance(member, (staticmethod, classmethod)):
            _check_callable(member_path, member.__func__, problems)


def check_module(module_name: str) -> List[str]:
    """Audit one module; returns a list of human-readable problems."""
    problems: List[str] = []
    module = importlib.import_module(module_name)
    if not (module.__doc__ or "").strip():
        problems.append(f"{module_name}: missing module docstring")
    for name, value in _public_members(module):
        path = f"{module_name}.{name}"
        defined_in = getattr(value, "__module__", None)
        if defined_in is None or defined_in != module_name:
            # Re-exports are audited at their defining module (when that
            # module is in scope at all); data constants carry no __module__.
            continue
        if inspect.isclass(value):
            _check_class(module_name, path, value, problems)
        elif inspect.isfunction(value):
            _check_callable(path, value, problems)
    return problems


def main() -> int:
    sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))
    modules = sorted(set(name for root in AUDITED_MODULES for name in _iter_module_names(root)))
    all_problems: List[str] = []
    for module_name in modules:
        all_problems.extend(check_module(module_name))
    if all_problems:
        print(f"docstring audit FAILED: {len(all_problems)} problem(s)\n", file=sys.stderr)
        for problem in all_problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    print(f"docstring audit ok: {len(modules)} modules, no missing docstrings")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
