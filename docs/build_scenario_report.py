#!/usr/bin/env python
"""Build the scenario-battery report: anytime-accuracy curves per scenario.

Runs (or loads) a :func:`repro.evaluation.battery.run_scenario_battery`
result and renders it as a dependency-free static site — one HTML page with
a per-scenario curve table (accuracy at every node budget for each
classifier), the prequential live-stream metrics, the win/loss summary, and
the full provenance of every scenario (serialized spec, seed, stream
fingerprint) so any number in the report can be regenerated bit-for-bit.
A ``scenario_report.md`` twin and a machine-readable ``results.json`` are
written next to it, and ``--landing`` emits the ``docs`` site index that ties
the pdoc API reference and this report together.

CI usage (the ``docs`` job; see ``.github/workflows/ci.yml``)::

    PYTHONPATH=src python docs/build_scenario_report.py \
        --output docs/site/scenarios --smoke --landing docs/site/index.html

Nightly runs drop ``--smoke`` to cover every registered scenario at full
stream size.
"""

from __future__ import annotations

import argparse
import html
import json
import os
import sys
from typing import Any, Dict, List, Optional

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif; margin: 2rem auto;
       max-width: 70rem; color: #1a1a2e; line-height: 1.5; padding: 0 1rem; }
h1, h2 { border-bottom: 2px solid #e0e0ef; padding-bottom: .3rem; }
table { border-collapse: collapse; margin: 1rem 0; }
th, td { border: 1px solid #d0d0e0; padding: .35rem .7rem; text-align: right; }
th { background: #f0f0fa; }
td.name, th.name { text-align: left; }
td.win { background: #e6f7e6; }
td.loss { background: #fae9e9; }
code, pre { background: #f6f6fb; border-radius: 4px; }
pre { padding: .7rem; overflow-x: auto; font-size: .85rem; }
details { margin: .6rem 0; }
.meta { color: #666; font-size: .9rem; }
"""


def _curve_table_html(outcome: Dict[str, Any], budgets: List[int]) -> str:
    """One scenario's accuracy-vs-budget table, forest wins highlighted."""
    rows = []
    header = "".join(f"<th>b={budget}</th>" for budget in budgets)
    rows.append(f"<tr><th class='name'>classifier</th>{header}<th>prequential</th></tr>")
    curves = outcome["curves"]
    best_at = []
    for position in range(len(budgets)):
        best_at.append(
            max(curves[kind][position][1] for kind in curves if kind != "bayes_forest")
        )
    for kind in sorted(curves.keys()):
        cells = []
        for position, (_, acc) in enumerate(curves[kind]):
            marker = ""
            if kind == "bayes_forest":
                marker = " class='win'" if acc >= best_at[position] - 1e-9 else " class='loss'"
            cells.append(f"<td{marker}>{acc:.3f}</td>")
        preq = outcome["prequential"][kind]
        rows.append(
            f"<tr><td class='name'>{html.escape(kind)}</td>{''.join(cells)}<td>{preq:.3f}</td></tr>"
        )
    return "<table>" + "".join(rows) + "</table>"


def _provenance_html(outcome: Dict[str, Any]) -> str:
    """Collapsible provenance block: spec, seed and stream fingerprint."""
    spec_json = json.dumps(outcome["spec"], indent=2, sort_keys=True)
    return (
        "<details><summary>provenance (spec, seed, fingerprint)</summary>"
        f"<p class='meta'>stream fingerprint <code>{outcome['fingerprint']}</code> · "
        f"{outcome['size']} objects, {outcome['labeled_count']} labelled</p>"
        f"<pre>{html.escape(spec_json)}</pre></details>"
    )


def render_html(result: Dict[str, Any]) -> str:
    """Render a battery result dict as the standalone report page."""
    budgets = [int(b) for b in result["budgets"]]
    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        "<title>Scenario battery — anytime accuracy report</title>",
        f"<style>{_CSS}</style></head><body>",
        "<h1>Scenario battery — anytime accuracy report</h1>",
        "<p>Each scenario is a seeded, declarative stream spec "
        "(<code>repro.scenarios</code>) run through the anytime Bayes forest and three "
        "baseline classifiers. Cells show holdout accuracy at each node budget; green "
        "marks budgets where the forest matches or beats every baseline, red where a "
        "baseline wins. The <em>prequential</em> column is test-then-train accuracy over "
        "the live stream region under each object's arrival budget.</p>",
        f"<p class='meta'>size scale {result['size_scale']} · {result['config_note']} · "
        f"forest win rate <strong>{result['forest_win_rate']:.3f}</strong> over "
        f"{len(result['outcomes'])} scenarios × {len(budgets)} budgets</p>",
    ]
    for outcome in result["outcomes"]:
        description = outcome["spec"].get("description", "")
        parts.append(f"<h2>{html.escape(outcome['scenario'])}</h2>")
        parts.append(f"<p>{html.escape(description)}</p>")
        parts.append(_curve_table_html(outcome, budgets))
        parts.append(_provenance_html(outcome))
    parts.append("</body></html>")
    return "".join(parts)


def render_markdown(result: Dict[str, Any]) -> str:
    """Render a battery result dict as the markdown twin of the report."""
    budgets = [int(b) for b in result["budgets"]]
    lines = [
        "# Scenario battery — anytime accuracy report",
        "",
        f"Size scale {result['size_scale']}; forest win rate "
        f"**{result['forest_win_rate']:.3f}** over {len(result['outcomes'])} scenarios × "
        f"{len(budgets)} budgets.",
        "",
    ]
    for outcome in result["outcomes"]:
        lines.append(f"## {outcome['scenario']}")
        lines.append("")
        lines.append(outcome["spec"].get("description", ""))
        lines.append("")
        header = "| classifier | " + " | ".join(f"b={b}" for b in budgets) + " | prequential |"
        rule = "|" + "---|" * (len(budgets) + 2)
        lines.append(header)
        lines.append(rule)
        for kind in sorted(outcome["curves"].keys()):
            accs = " | ".join(f"{acc:.3f}" for _, acc in outcome["curves"][kind])
            lines.append(f"| {kind} | {accs} | {outcome['prequential'][kind]:.3f} |")
        lines.append("")
        lines.append(
            f"Provenance: seed `{outcome['spec']['seed']}`, fingerprint "
            f"`{outcome['fingerprint'][:16]}…`, {outcome['size']} objects "
            f"({outcome['labeled_count']} labelled)."
        )
        lines.append("")
    return "\n".join(lines)


def render_landing(api_href: str, report_href: str) -> str:
    """The docs site index tying the API reference and the report together."""
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>Anytime Bayes tree — documentation</title><style>{_CSS}</style></head><body>"
        "<h1>Anytime Bayes tree — documentation</h1>"
        "<p>Reproduction of Kranen &amp; Seidl's anytime Bayesian stream classifier.</p>"
        "<ul>"
        f"<li><a href='{html.escape(api_href)}'>API reference</a> — pdoc-rendered, "
        "docstring-audited public surface.</li>"
        f"<li><a href='{html.escape(report_href)}'>Scenario battery report</a> — "
        "anytime-accuracy-vs-budget curves for every classifier on every stress "
        "scenario, with full provenance.</li>"
        "</ul></body></html>"
    )


def build(
    output: str,
    smoke: bool,
    size_scale: Optional[float],
    landing: Optional[str],
    results_in: Optional[str],
) -> int:
    """Run/load the battery and write the HTML+markdown+JSON report."""
    if results_in:
        with open(results_in, "r", encoding="utf-8") as handle:
            result = json.load(handle)
    else:
        repo_src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
        if repo_src not in sys.path:
            sys.path.insert(0, repo_src)
        from repro.evaluation import run_scenario_battery
        from repro.scenarios import SMOKE_SCENARIOS

        names = SMOKE_SCENARIOS if smoke else None
        scale = size_scale if size_scale is not None else (0.25 if smoke else 1.0)
        result = run_scenario_battery(names=names, size_scale=scale).to_dict()
    os.makedirs(output, exist_ok=True)
    with open(os.path.join(output, "results.json"), "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
    with open(os.path.join(output, "index.html"), "w", encoding="utf-8") as handle:
        handle.write(render_html(result))
    with open(os.path.join(output, "scenario_report.md"), "w", encoding="utf-8") as handle:
        handle.write(render_markdown(result))
    print(
        f"scenario report written to {output} "
        f"({len(result['outcomes'])} scenarios, win rate {result['forest_win_rate']:.3f})"
    )
    if landing:
        os.makedirs(os.path.dirname(landing) or ".", exist_ok=True)
        api_href = "api/index.html"
        report_href = os.path.relpath(os.path.join(output, "index.html"), os.path.dirname(landing))
        with open(landing, "w", encoding="utf-8") as handle:
            handle.write(render_landing(api_href, report_href))
        print(f"landing page written to {landing}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="docs/site/scenarios", help="report output directory")
    parser.add_argument(
        "--smoke", action="store_true", help="run only the smoke scenario subset at reduced scale"
    )
    parser.add_argument(
        "--size-scale", type=float, default=None,
        help="stream size multiplier (default 1.0, 0.25 with --smoke)",
    )
    parser.add_argument(
        "--landing", default=None, help="also write the docs site index page at this path"
    )
    parser.add_argument(
        "--results", default=None, help="render a previously saved results.json instead of re-running"
    )
    args = parser.parse_args(argv)
    return build(args.output, args.smoke, args.size_scale, args.landing, args.results)


if __name__ == "__main__":
    raise SystemExit(main())
