"""reprolint — repo-specific static analysis for the anytime-Bayes forest.

Six PRs of optimisation left this codebase with correctness contracts that
generic linters cannot see: probability math must stay in log space, decayed
statistics are only read against an explicit logical clock, snapshots are
pickle-free, shared-memory segments have exactly one unlinker, trace-pinned
code must be deterministic, and batch hot paths must stay vectorised.
reprolint machine-checks those contracts (rules RL001–RL006, each documented
in its class docstring and in DESIGN.md "Enforced invariants") so the
compactor / multi-tenant / multi-node refactors on the ROADMAP can rewrite
hot paths without re-litigating the invariants in review.

Usage::

    python -m tools.reprolint src/ tests/ benchmarks/
    python -m tools.reprolint --list
    python -m tools.reprolint --explain RL003

Suppress a justified exception on its own line::

    return np.exp(log_density)  # reprolint: disable=RL001 -- linear-space API boundary

Only the standard library is used; the checker runs anywhere the test suite
runs (it is enforced in tier-1 via ``tests/analysis/``).
"""

from .engine import (
    FileContext,
    LintError,
    ProjectContext,
    Rule,
    Violation,
    run_paths,
)
from .rules import ALL_RULES, RULES_BY_CODE

__all__ = [
    "ALL_RULES",
    "RULES_BY_CODE",
    "FileContext",
    "LintError",
    "ProjectContext",
    "Rule",
    "Violation",
    "run_paths",
]
