"""The repo-specific invariant rules (RL001–RL006).

Each rule machine-checks a correctness contract introduced by an earlier PR
(see DESIGN.md "Enforced invariants" for the PR-by-PR provenance).  Rules are
AST-based and heuristic by construction: they aim for zero false negatives
on the regression classes that actually bit this codebase, and route the
occasional justified exception through a per-line
``# reprolint: disable=CODE -- reason`` comment rather than loosening the
pattern.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set

from .engine import FileContext, ProjectContext, Rule, Violation

__all__ = ["ALL_RULES"]


def _call_target(node: ast.Call) -> Optional[str]:
    """Dotted name of a call target: ``np.exp(...)`` -> ``"np.exp"``."""
    parts: List[str] = []
    current: ast.expr = node.func
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def _keyword(node: ast.Call, name: str) -> Optional[ast.expr]:
    for keyword in node.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def _is_const(node: Optional[ast.expr], value: object) -> bool:
    return isinstance(node, ast.Constant) and node.value is value


#: Wall-clock reads: each one makes the result depend on when it ran.
_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "date.today",
}


def _wall_clock_violations(rule: Rule, ctx: FileContext, message: str) -> List[Violation]:
    found = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        target = _call_target(node)
        if target is None:
            continue
        origin = ctx.from_imports.get(target, target)
        if target in _WALL_CLOCK_CALLS or origin in {"time.time", "time.monotonic", "time.perf_counter"}:
            found.append(rule.violation(ctx, node, message.format(call=target)))
    return found


class ProbabilitySpaceMath(Rule):
    """RL001: probability math outside ``stats/`` must stay in log space.

    The pre-PR-1 engine multiplied linear-space pdf values and silently
    underflowed to an all-zero posterior above ~40 dimensions; PR 1 moved the
    whole query path onto ``log_gaussian_pdf`` + ``logsumexp``.  This rule
    keeps it there: outside ``src/repro/stats/`` no code may call
    ``np.exp``/``math.exp`` (leaving log space) or multiply two pdf-valued
    calls (linear-space products are exactly the underflow pattern).
    Deliberate linear-space API boundaries carry a disable comment saying so.
    """

    code = "RL001"
    name = "prob-space-math"

    def applies_to(self, relpath: str, project: ProjectContext) -> bool:
        return relpath.startswith("src/repro/") and not relpath.startswith("src/repro/stats/")

    def check(self, ctx: FileContext, project: ProjectContext) -> List[Violation]:
        found: List[Violation] = []
        exp_callables = {f"{alias}.exp" for alias in ctx.numpy_aliases}
        exp_callables |= {f"{alias}.exp" for alias in ctx.math_aliases}
        for local, origin in ctx.from_imports.items():
            if origin in {"numpy.exp", "math.exp"}:
                exp_callables.add(local)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                target = _call_target(node)
                if target in exp_callables:
                    found.append(
                        self.violation(
                            ctx,
                            node,
                            f"`{target}(...)` leaves log space outside stats/; route through "
                            "log_gaussian_pdf/logsumexp (or justify with a disable comment)",
                        )
                    )
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
                if self._is_pdf_call(node.left) and self._is_pdf_call(node.right):
                    found.append(
                        self.violation(
                            ctx,
                            node,
                            "product of linear-space pdf values underflows in high dimensions; "
                            "sum log-densities instead",
                        )
                    )
        return found

    @staticmethod
    def _is_pdf_call(node: ast.expr) -> bool:
        if not isinstance(node, ast.Call):
            return False
        target = _call_target(node)
        if target is None:
            return False
        tail = target.rsplit(".", 1)[-1]
        return "pdf" in tail and not tail.startswith("log")


class PickleFreePersistence(Rule):
    """RL002: ``persist/`` and ``serving/`` are pickle-free by contract.

    PR 4's snapshot format is portable .npz/JSON specifically so that loading
    an untrusted snapshot can never execute code and restores stay
    bit-identical across interpreter versions.  Inside ``src/repro/persist/``
    and ``src/repro/serving/`` this rule forbids importing pickle-family
    serialisers (pickle, dill, joblib, shelve, marshal) and requires every
    ``np.load`` call to pass ``allow_pickle=False`` explicitly — relying on
    numpy's default would let a future default-flip reopen the hole.
    """

    code = "RL002"
    name = "pickle-free-persistence"

    _FORBIDDEN_MODULES = {"pickle", "cPickle", "_pickle", "dill", "joblib", "shelve", "marshal"}

    def applies_to(self, relpath: str, project: ProjectContext) -> bool:
        return relpath.startswith(("src/repro/persist/", "src/repro/serving/"))

    def check(self, ctx: FileContext, project: ProjectContext) -> List[Violation]:
        found: List[Violation] = []
        load_callables = {f"{alias}.load" for alias in ctx.numpy_aliases}
        save_callables = {f"{alias}.save" for alias in ctx.numpy_aliases}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] in self._FORBIDDEN_MODULES:
                        found.append(
                            self.violation(
                                ctx, node, f"`import {alias.name}` in a pickle-free layer; "
                                "snapshots must stay executable-code-free (PR 4 contract)"
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module and node.module.split(".")[0] in self._FORBIDDEN_MODULES:
                    found.append(
                        self.violation(
                            ctx, node, f"`from {node.module} import ...` in a pickle-free layer; "
                            "snapshots must stay executable-code-free (PR 4 contract)"
                        )
                    )
            elif isinstance(node, ast.Call):
                target = _call_target(node)
                if target in load_callables and not _is_const(_keyword(node, "allow_pickle"), False):
                    found.append(
                        self.violation(
                            ctx, node, "`np.load` without explicit `allow_pickle=False`; the snapshot "
                            "format forbids pickled payloads"
                        )
                    )
                elif target in save_callables and _is_const(_keyword(node, "allow_pickle"), True):
                    found.append(
                        self.violation(
                            ctx, node, "`np.save(..., allow_pickle=True)` writes pickled payloads into "
                            "a pickle-free layer"
                        )
                    )
        return found


class SharedMemoryLifecycle(Rule):
    """RL003: shared-memory segments have exactly one owner module.

    PR 6's zero-copy serving hinges on a strict lifecycle: the engine-side
    ``SharedColumnStore`` is the only creator/unlinker, and worker attaches
    must suppress CPython's resource-tracker registration (otherwise a worker
    exit unlinks the segment under everyone else — the silent-corruption bug
    class this rule exists for).  Enforced shape: ``multiprocessing.shared_memory``
    may only be imported in ``serving/shared_mem.py``; ``.unlink()`` on
    shm-like handles is confined to that module too; and inside it, any
    function attaching to an existing segment (``SharedMemory`` without
    ``create=True``) must touch ``resource_tracker`` in the same scope.

    Segment *disposal* through the sanctioned API (``store.dispose()``) is
    almost as sensitive: it unlinks the segment for every attached process.
    Exactly two modules may trigger it — the serving engine (hot swap /
    close) and the model registry (tenant eviction) — always via the
    shared_mem API, never a raw ``unlink``.  A ``.dispose()`` on a
    store-like receiver anywhere else is flagged.
    """

    code = "RL003"
    name = "shm-lifecycle"

    _OWNER = "src/repro/serving/shared_mem.py"
    _SHMLIKE = ("shm", "segment", "shared_mem", "seg")
    _STORELIKE = ("store",) + _SHMLIKE
    #: Modules allowed to call ``.dispose()`` on a SharedColumnStore: the
    #: engine (swap/close) and the registry (tenant eviction), nothing else.
    _DISPOSERS = ("/serving/engine.py", "/serving/registry.py")

    def applies_to(self, relpath: str, project: ProjectContext) -> bool:
        return relpath.endswith(".py")

    def check(self, ctx: FileContext, project: ProjectContext) -> List[Violation]:
        if ctx.relpath == self._OWNER or ctx.relpath.endswith("/shared_mem.py"):
            return self._check_owner(ctx)
        return self._check_outsider(ctx)

    def _check_outsider(self, ctx: FileContext) -> List[Violation]:
        found: List[Violation] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.startswith("multiprocessing.shared_memory"):
                        found.append(self._import_violation(ctx, node))
            elif isinstance(node, ast.ImportFrom):
                if node.module == "multiprocessing" and any(
                    alias.name == "shared_memory" for alias in node.names
                ):
                    found.append(self._import_violation(ctx, node))
                elif node.module and node.module.startswith("multiprocessing.shared_memory"):
                    found.append(self._import_violation(ctx, node))
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr == "unlink" and self._looks_shmlike(node.func.value):
                    found.append(
                        self.violation(
                            ctx, node, "`.unlink()` on a shared-memory handle outside "
                            "serving/shared_mem.py; the engine-side store is the single unlinker"
                        )
                    )
                elif (
                    node.func.attr == "dispose"
                    and self._looks_storelike(node.func.value)
                    and not self._may_dispose(ctx.relpath)
                ):
                    found.append(
                        self.violation(
                            ctx, node, "segment disposal (`.dispose()` on a column store) is "
                            "confined to serving/engine.py (swap/close) and "
                            "serving/registry.py (tenant eviction)"
                        )
                    )
        return found

    def _may_dispose(self, relpath: str) -> bool:
        normalized = "/" + relpath.replace("\\", "/").lstrip("/")
        return any(normalized.endswith(suffix) for suffix in self._DISPOSERS)

    def _looks_storelike(self, node: ast.expr) -> bool:
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name is None:
            return False
        lowered = name.lower().lstrip("_")
        return any(prefix in lowered for prefix in self._STORELIKE)

    def _import_violation(self, ctx: FileContext, node: ast.AST) -> Violation:
        return self.violation(
            ctx, node, "multiprocessing.shared_memory may only be used via "
            "repro.serving.shared_mem (single creator/unlinker, tracker-suppressed attach)"
        )

    def _looks_shmlike(self, node: ast.expr) -> bool:
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name is None:
            return False
        lowered = name.lower().lstrip("_")
        return any(lowered.startswith(prefix) or prefix in lowered for prefix in self._SHMLIKE)

    def _check_owner(self, ctx: FileContext) -> List[Violation]:
        found: List[Violation] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            attaches = [
                call
                for call in ast.walk(node)
                if isinstance(call, ast.Call)
                and (_call_target(call) or "").endswith("SharedMemory")
                and not _is_const(_keyword(call, "create"), True)
            ]
            if not attaches:
                continue
            mentions_tracker = any(
                isinstance(sub, (ast.Name, ast.Attribute))
                and "resource_tracker" in ast.dump(sub)
                for sub in ast.walk(node)
            )
            if not mentions_tracker:
                for call in attaches:
                    found.append(
                        self.violation(
                            ctx, call, "SharedMemory attach without resource_tracker handling in the "
                            "same function; an attach registered as owned unlinks the segment on exit"
                        )
                    )
        return found


class DecayClockDiscipline(Rule):
    """RL004: decayed statistics are read against an explicit logical clock.

    PR 3 threads one ``DecayClock`` per tree through every CF read so that
    insertion-path updates and query-time reads agree on "now" — and so that
    replays are reproducible.  In ``index/``, ``core/`` and ``clustering/``
    this rule forbids wall-clock calls (``time.time()`` and friends — the
    clock must arrive as a parameter or live on the tree) and hard-coded
    numeric literals as the time argument of ``.decay_to(...)`` /
    ``decay_factor(...)`` (a pinned clock silently freezes aging).
    """

    code = "RL004"
    name = "decay-clock-discipline"

    def applies_to(self, relpath: str, project: ProjectContext) -> bool:
        return relpath.startswith(
            ("src/repro/index/", "src/repro/core/", "src/repro/clustering/")
        )

    def check(self, ctx: FileContext, project: ProjectContext) -> List[Violation]:
        found = _wall_clock_violations(
            self,
            ctx,
            "`{call}()` in the index layer; decay reads must thread a DecayClock / `now` "
            "parameter, never the wall clock",
        )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _call_target(node) or ""
            time_arg: Optional[ast.expr] = None
            if target.endswith(".decay_to") and node.args:
                time_arg = node.args[0]
            elif target.rsplit(".", 1)[-1] == "decay_factor" and len(node.args) >= 2:
                time_arg = node.args[1]
            if (
                isinstance(time_arg, ast.Constant)
                and isinstance(time_arg.value, (int, float))
                and not isinstance(time_arg.value, bool)
            ):
                found.append(
                    self.violation(
                        ctx, node, "hard-coded time argument pins the decay clock; pass the "
                        "tree's clock value (`clock.now` / a `now` parameter) instead",
                    )
                )
        return found


class TraceDeterminism(Rule):
    """RL005: code reachable from trace-pinned drivers stays deterministic.

    The equivalence suite pins scalar/batch/flat/restored classification to
    bit-identical ``classification_trace_hash`` values; any hidden source of
    nondeterminism in the modules those drivers import turns that gate into a
    flaky coin-flip.  Within the transitive import closure of
    ``repro.core.classifier``, ``repro.core.flat`` and ``repro.stream.anytime``
    (explicit imports only — package facades are not expanded through), this
    rule forbids wall-clock reads, global-state RNG calls (``np.random.*``,
    stdlib ``random.*``), unseeded ``default_rng()`` / ``RandomState()``, and
    iteration over sets (hash-order-dependent; wrap in ``sorted(...)``).
    """

    code = "RL005"
    name = "trace-determinism"

    _NP_RANDOM_OK = {"default_rng", "Generator", "SeedSequence", "RandomState", "BitGenerator"}

    def applies_to(self, relpath: str, project: ProjectContext) -> bool:
        module = None
        for name, ctx in project.modules.items():
            if ctx.scoped == relpath:
                module = name
                break
        return project.in_trace_closure(module)

    def check(self, ctx: FileContext, project: ProjectContext) -> List[Violation]:
        found = _wall_clock_violations(
            self,
            ctx,
            "`{call}()` in a trace-pinned module makes classification traces "
            "time-dependent; thread timestamps from the stream driver",
        )
        random_aliases = {f"{alias}.random" for alias in ctx.numpy_aliases}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                found.extend(self._check_call(ctx, node, random_aliases))
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if self._is_set_expr(node.iter):
                    found.append(self._set_violation(ctx, node.iter))
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for generator in node.generators:
                    if self._is_set_expr(generator.iter):
                        found.append(self._set_violation(ctx, generator.iter))
        return found

    def _check_call(
        self, ctx: FileContext, node: ast.Call, random_aliases: Set[str]
    ) -> List[Violation]:
        target = _call_target(node)
        if target is None:
            return []
        head, _, tail = target.rpartition(".")
        if head in random_aliases:
            if tail in {"default_rng", "RandomState"} and not node.args and not node.keywords:
                return [
                    self.violation(
                        ctx, node, f"unseeded `{target}()` in a trace-pinned module; pass an "
                        "explicit seed (or take the generator as a parameter)",
                    )
                ]
            if tail not in self._NP_RANDOM_OK:
                return [
                    self.violation(
                        ctx, node, f"`{target}(...)` uses numpy's global RNG state; take a seeded "
                        "`np.random.Generator` parameter instead",
                    )
                ]
        elif head == "random" and "random" not in ctx.from_imports:
            return [
                self.violation(
                    ctx, node, f"`{target}(...)` uses the process-global stdlib RNG; use a seeded "
                    "`random.Random(seed)` instance",
                )
            ]
        # Iterating a set via list()/tuple() conversion launders the order.
        if target in {"list", "tuple"} and node.args and self._is_set_expr(node.args[0]):
            return [self._set_violation(ctx, node.args[0])]
        return []

    @staticmethod
    def _is_set_expr(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in {"set", "frozenset"}
        )

    def _set_violation(self, ctx: FileContext, node: ast.expr) -> Violation:
        return self.violation(
            ctx, node, "iteration order of a set depends on hashing; wrap in `sorted(...)` "
            "before iterating in a trace-pinned module",
        )


class BatchHotPathLoops(Rule):
    """RL006: batch hot paths never fall back to per-item scalar evaluation.

    PR 1/PR 6 made batch classification ~200x faster than the per-query
    scalar loop precisely by keeping the hot path vectorised over SoA
    columns; one innocent ``for query in queries: ... .density(query)``
    regression would silently give that back.  In ``core/`` and ``serving/``,
    functions on the batch hot path (``*_batch``, the ``drive_*`` drivers,
    engine scatter/submit) must not loop over a batch parameter while calling
    a scalar-path evaluator in the loop body — use the batch/SoA helpers
    (``leaf_arrays`` / ``log_density_batch`` / ``_entry_batch_params``).
    Per-item *bookkeeping* loops (building result objects) stay legal.
    """

    code = "RL006"
    name = "batch-hot-path-loops"

    _HOT_EXACT = {
        "drive_predict_full",
        "_drive_batch_chunk",
        "submit",
        "_scatter_budgeted",
        "_predict_budgeted",
    }
    _BATCH_PARAM_NAMES = {
        "queries",
        "query_batch",
        "batch",
        "batches",
        "points",
        "items",
        "xs",
        "budgets",
        "requests",
    }
    _SCALAR_EVALUATORS = {
        "classify_anytime",
        "density",
        "pdf",
        "log_pdf",
        "weighted_pdf",
        "_entry_density",
        "pdq_scalar",
        "log_gaussian_pdf",
        "gaussian_pdf",
        "predict",
        "classify",
    }

    def applies_to(self, relpath: str, project: ProjectContext) -> bool:
        return relpath.startswith(("src/repro/core/", "src/repro/serving/"))

    def check(self, ctx: FileContext, project: ProjectContext) -> List[Violation]:
        found: List[Violation] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not (node.name.endswith("_batch") or node.name in self._HOT_EXACT):
                continue
            params = {
                arg.arg
                for arg in (
                    node.args.posonlyargs + node.args.args + node.args.kwonlyargs
                )
            }
            batch_params = params & self._BATCH_PARAM_NAMES
            if not batch_params:
                continue
            for loop in ast.walk(node):
                if not isinstance(loop, (ast.For, ast.AsyncFor)):
                    continue
                if not self._iterates_batch(loop.iter, batch_params):
                    continue
                evaluator = self._scalar_call_in(loop)
                if evaluator is not None:
                    found.append(
                        self.violation(
                            ctx, loop, f"per-item loop over a query batch calls scalar-path "
                            f"`{evaluator}`; use the batch/SoA helpers instead "
                            "(leaf_arrays / log_density_batch / classify_anytime_batch)",
                        )
                    )
        return found

    def _iterates_batch(self, iter_node: ast.expr, batch_params: Set[str]) -> bool:
        if isinstance(iter_node, ast.Name):
            return iter_node.id in batch_params
        if isinstance(iter_node, ast.Call):
            target = _call_target(iter_node)
            if target in {"enumerate", "zip", "reversed"}:
                return any(self._iterates_batch(arg, batch_params) for arg in iter_node.args)
            if target == "range":
                return any(
                    isinstance(arg, ast.Call)
                    and _call_target(arg) == "len"
                    and arg.args
                    and self._iterates_batch(arg.args[0], batch_params)
                    for arg in iter_node.args
                )
        return False

    def _scalar_call_in(self, loop: ast.stmt) -> Optional[str]:
        for node in ast.walk(loop):
            if not isinstance(node, ast.Call):
                continue
            target = _call_target(node)
            if target is None:
                continue
            tail = target.rsplit(".", 1)[-1]
            if tail in self._SCALAR_EVALUATORS:
                return target
        return None


#: Every shipped rule, in code order.  The CLI, the meta-test and DESIGN.md
#: all key off this registry.
ALL_RULES: Sequence[Rule] = (
    ProbabilitySpaceMath(),
    PickleFreePersistence(),
    SharedMemoryLifecycle(),
    DecayClockDiscipline(),
    TraceDeterminism(),
    BatchHotPathLoops(),
)

#: code -> rule instance, for --explain and the fixture tests.
RULES_BY_CODE: Dict[str, Rule] = {rule.code: rule for rule in ALL_RULES}
