"""Core machinery of reprolint: file contexts, rule protocol, project scan.

The engine is deliberately dependency-free (stdlib ``ast`` + ``tokenize``):
it must run in every environment the test suite runs in, including minimal
CI containers without the lint/typecheck toolchain installed.

Key pieces:

* :class:`FileContext` — one parsed source file plus everything rules need:
  the AST, repo-relative path, per-line disable directives, and the names the
  module binds to ``numpy``/``math`` (so aliased imports don't dodge rules).
* :class:`ProjectContext` — whole-scan state: the intra-``repro`` import
  graph and the *trace closure*, i.e. every module transitively imported by
  the trace-hash-pinned drivers (see :data:`TRACE_DRIVER_MODULES`).  Rules
  that guard determinism scope themselves with it.
* :func:`run_paths` — discovery + dispatch; returns sorted violations.

Suppression: a violation on line *N* is suppressed when line *N* carries a
``# reprolint: disable=CODE[,CODE...] [-- reason]`` comment naming its code
(or ``all``).  Disables are per-line by design — blanket per-file opt-outs
would defeat the point of machine-checking the invariants.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Violation",
    "FileContext",
    "ProjectContext",
    "Rule",
    "LintError",
    "TRACE_DRIVER_MODULES",
    "collect_files",
    "build_file_context",
    "run_paths",
]

#: Modules whose outputs are pinned by ``classification_trace_hash``
#: equivalence tests.  Everything they (transitively) import must stay
#: deterministic; the determinism rule (RL005) applies to that closure.
TRACE_DRIVER_MODULES = (
    "repro.core.classifier",
    "repro.core.flat",
    "repro.stream.anytime",
)

#: Directory names never descended into during discovery.  ``fixtures`` keeps
#: the golden lint fixtures (which contain violations on purpose) out of the
#: production scan; passing a fixture tree as an explicit root still works.
SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules", "fixtures", ".mypy_cache", ".ruff_cache"}

_DISABLE_RE = re.compile(
    r"#\s*reprolint:\s*disable=(?P<codes>[A-Za-z0-9_,\s]+?)(?:\s*--\s*(?P<reason>.*))?\s*$"
)


class LintError(RuntimeError):
    """Raised for unusable inputs (unreadable or syntactically invalid files)."""


@dataclass(frozen=True, order=True)
class Violation:
    """One rule hit: a location, an error code and a human-readable message."""

    relpath: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.relpath}:{self.line}:{self.col}: {self.code} {self.message}"


#: Path anchors used to normalise rule scopes: rules match against the path
#: suffix starting at the first anchor, so ``fixtures/case7/src/repro/x.py``
#: scopes exactly like the real ``src/repro/x.py``.
_SCOPE_ANCHORS = ("src", "tests", "benchmarks", "examples", "tools", "docs")


def scope_of(relpath: str) -> str:
    """Scope path of a file: its suffix from the first known anchor directory."""
    parts = Path(relpath).parts
    indexes = [parts.index(anchor) for anchor in _SCOPE_ANCHORS if anchor in parts]
    if not indexes:
        return relpath.replace("\\", "/")
    return "/".join(parts[min(indexes) :])


@dataclass
class FileContext:
    """A parsed source file plus the per-file facts every rule consumes."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    #: line number -> set of disabled codes ("ALL" disables everything).
    disables: Dict[int, Set[str]] = field(default_factory=dict)
    #: local names bound to the numpy module (e.g. {"np", "numpy"}).
    numpy_aliases: Set[str] = field(default_factory=set)
    #: local names bound to the math module.
    math_aliases: Set[str] = field(default_factory=set)
    #: local name -> "module.attr" for from-imports (e.g. exp -> "numpy.exp").
    from_imports: Dict[str, str] = field(default_factory=dict)
    #: dotted module name when the file lives under a ``src/`` root.
    module: Optional[str] = None

    @property
    def scoped(self) -> str:
        """Anchor-normalised path rules scope against (see :func:`scope_of`)."""
        return scope_of(self.relpath)

    def is_suppressed(self, violation: Violation) -> bool:
        codes = self.disables.get(violation.line, set())
        return "ALL" in codes or violation.code in codes


class Rule:
    """Base class for reprolint rules.

    Subclasses set :attr:`code` / :attr:`name`, document the invariant in
    their class docstring (surfaced by ``--explain``), scope themselves via
    :meth:`applies_to` and report findings from :meth:`check`.
    """

    code: str = "RL000"
    name: str = "abstract-rule"

    def applies_to(self, relpath: str, project: "ProjectContext") -> bool:
        """Whether the rule runs on this file; receives the *scoped* path."""
        raise NotImplementedError

    def check(self, ctx: FileContext, project: "ProjectContext") -> List[Violation]:
        raise NotImplementedError

    def violation(self, ctx: FileContext, node: ast.AST, message: str) -> Violation:
        return Violation(
            relpath=ctx.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        )


def _parse_disables(source: str) -> Dict[int, Set[str]]:
    """Map line numbers to the rule codes disabled on that line."""
    disables: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _DISABLE_RE.search(token.string)
            if match is None:
                continue
            codes = {
                code.strip().upper()
                for code in match.group("codes").split(",")
                if code.strip()
            }
            disables.setdefault(token.start[0], set()).update(codes)
    except tokenize.TokenizeError:  # pragma: no cover - parse already succeeded
        pass
    return disables


def _module_name(relpath: str) -> Optional[str]:
    """Dotted module name for files under a ``src/`` root, else None."""
    parts = Path(relpath).parts
    if "src" not in parts:
        return None
    src_index = parts.index("src")
    module_parts = list(parts[src_index + 1 :])
    if not module_parts or not module_parts[-1].endswith(".py"):
        return None
    module_parts[-1] = module_parts[-1][: -len(".py")]
    if module_parts[-1] == "__init__":
        module_parts.pop()
    if not module_parts:
        return None
    return ".".join(module_parts)


def _collect_import_facts(ctx: FileContext) -> None:
    """Populate numpy/math aliases and the from-import origin table."""
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                if alias.name == "numpy" or alias.name.startswith("numpy."):
                    ctx.numpy_aliases.add(bound)
                elif alias.name == "math":
                    ctx.math_aliases.add(bound)
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            for alias in node.names:
                bound = alias.asname or alias.name
                ctx.from_imports[bound] = f"{node.module}.{alias.name}"


def build_file_context(path: Path, relpath: str) -> FileContext:
    """Parse one file into a :class:`FileContext` (raises LintError on failure)."""
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise LintError(f"cannot read {path}: {exc}") from exc
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise LintError(f"cannot parse {path}: {exc}") from exc
    ctx = FileContext(
        path=path,
        relpath=relpath,
        source=source,
        tree=tree,
        disables=_parse_disables(source),
        module=_module_name(relpath),
    )
    _collect_import_facts(ctx)
    return ctx


def _resolve_relative(module: str, node: ast.ImportFrom) -> Optional[str]:
    """Absolute dotted target of a relative import, given the importing module."""
    package_parts = module.split(".")
    # A module's package is its parents; ``level`` strips that many levels.
    if len(package_parts) < node.level:
        return None
    base = package_parts[: len(package_parts) - node.level]
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base) if base else None


def _module_imports(ctx: FileContext) -> Set[str]:
    """All intra-``repro`` modules this file references (absolute or relative)."""
    assert ctx.module is not None
    found: Set[str] = set()

    def note(target: Optional[str], names: Sequence[ast.alias] = ()) -> None:
        if not target or not target.split(".")[0] == "repro":
            return
        found.add(target)
        # ``from repro.persist import snapshot`` imports a *submodule*; record
        # both candidates — non-modules are simply absent from the graph.
        for alias in names:
            found.add(f"{target}.{alias.name}")

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                note(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                note(node.module, node.names)
            else:
                note(_resolve_relative(ctx.module, node), node.names)
    return found


@dataclass
class ProjectContext:
    """Whole-scan state shared by all rules."""

    #: dotted module name -> FileContext for files under a ``src/`` root.
    modules: Dict[str, FileContext] = field(default_factory=dict)
    #: modules transitively imported by the trace-pinned drivers.
    trace_closure: Set[str] = field(default_factory=set)

    def finalise(self) -> None:
        """Compute the trace closure once every module has been registered."""
        graph: Dict[str, Set[str]] = {
            name: _module_imports(ctx) for name, ctx in self.modules.items()
        }
        pending = [root for root in TRACE_DRIVER_MODULES if root in graph]
        closure: Set[str] = set()
        while pending:
            current = pending.pop()
            if current in closure:
                continue
            closure.add(current)
            for target in graph.get(current, ()):  # imports of known modules only
                if target in graph and target not in closure:
                    pending.append(target)
                # ``import repro.core.flat`` also marks package __init__ chain.
        self.trace_closure = closure

    def in_trace_closure(self, module: Optional[str]) -> bool:
        return module is not None and module in self.trace_closure


def collect_files(roots: Sequence[Path]) -> List[Tuple[Path, str]]:
    """Expand the given roots into (path, repo-relative path) pairs.

    Directories are walked recursively, skipping :data:`SKIP_DIRS` entries;
    explicitly named files are always included (which is how the fixture
    tests point reprolint at files living inside a skipped directory).
    """
    pairs: List[Tuple[Path, str]] = []
    seen: Set[Path] = set()

    def add(path: Path, rel: str) -> None:
        resolved = path.resolve()
        if resolved in seen:
            return
        seen.add(resolved)
        pairs.append((path, rel.replace("\\", "/")))

    for root in roots:
        if root.is_file():
            add(root, str(root))
        elif root.is_dir():
            prefix = Path(root.name) if root.name not in ("", ".", "..") else None
            for path in sorted(root.rglob("*.py")):
                relative = path.relative_to(root)
                if any(part in SKIP_DIRS for part in relative.parts[:-1]):
                    continue
                rel = str(prefix / relative) if prefix is not None else str(relative)
                add(path, rel)
        else:
            raise LintError(f"no such file or directory: {root}")
    return pairs


def run_paths(
    roots: Sequence[Path], rules: Iterable[Rule]
) -> Tuple[List[Violation], int]:
    """Lint every file under ``roots``; returns (violations, files scanned)."""
    pairs = collect_files(roots)
    contexts: List[FileContext] = []
    project = ProjectContext()
    for path, relpath in pairs:
        ctx = build_file_context(path, relpath)
        contexts.append(ctx)
        if ctx.module is not None:
            project.modules[ctx.module] = ctx
    project.finalise()

    violations: List[Violation] = []
    for ctx in contexts:
        for rule in rules:
            if not rule.applies_to(ctx.scoped, project):
                continue
            for violation in rule.check(ctx, project):
                if not ctx.is_suppressed(violation):
                    violations.append(violation)
    return sorted(violations), len(contexts)
