"""Command-line entry point: ``python -m tools.reprolint [paths...]``.

Exit status: 0 when clean, 1 when violations were found, 2 on unusable
input (missing path, syntax error).  Violations print one per line in
``path:line:col: CODE message`` form, ready for editor jump-to-error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .engine import LintError, run_paths
from .rules import ALL_RULES, RULES_BY_CODE


def _list_rules() -> str:
    lines = ["reprolint rules:"]
    for rule in ALL_RULES:
        summary = (rule.__doc__ or "").strip().splitlines()[0]
        lines.append(f"  {rule.code}  {rule.name:<28} {summary}")
    return "\n".join(lines)


def _explain(code: str) -> str:
    rule = RULES_BY_CODE.get(code.upper())
    if rule is None:
        raise LintError(f"unknown rule code: {code} (try --list)")
    doc = (rule.__doc__ or "").strip()
    return f"{rule.code} ({rule.name})\n\n{doc}"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description="Repo-specific invariant linter for the anytime-Bayes forest.",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument("--list", action="store_true", help="list all rules and exit")
    parser.add_argument("--explain", metavar="CODE", help="print a rule's full documentation")
    args = parser.parse_args(argv)

    try:
        if args.list:
            print(_list_rules())
            return 0
        if args.explain:
            print(_explain(args.explain))
            return 0
        if not args.paths:
            parser.error("no paths given (try: python -m tools.reprolint src/ tests/ benchmarks/)")
        violations, scanned = run_paths([Path(p) for p in args.paths], ALL_RULES)
    except LintError as exc:
        print(f"reprolint: error: {exc}", file=sys.stderr)
        return 2

    for violation in violations:
        print(violation.render())
    if violations:
        print(f"reprolint: {len(violations)} violation(s) in {scanned} file(s)", file=sys.stderr)
        return 1
    print(f"reprolint ok ({scanned} files scanned)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
