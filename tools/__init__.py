"""Repository maintenance tooling (not shipped with the ``repro`` package)."""
