"""Scenario battery demo: two contrasting stress scenarios, one line-up.

Runs the anytime Bayes forest and the three baseline classifiers through two
scenarios from the built-in battery (``repro.scenarios``): the
120-dimensional kernels scenario, where log-space density evaluation is the
difference between working and underflowing, and the adversarial-bursts
scenario, where the arrival process periodically collapses the anytime node
budget by a factor of fifty — the forest degrades gracefully, a fixed-cost
classifier cannot react at all.

Prints each scenario's anytime-accuracy-vs-budget curve table, its
provenance (seed + stream fingerprint), and the battery's win/loss summary.
The full report over every scenario is published by CI (see
``docs/build_scenario_report.py``).

Run with:  python examples/scenario_battery.py
"""

from repro.evaluation import format_win_loss_table, run_scenario_battery
from repro.scenarios import get_scenario


def main() -> None:
    names = ("highdim_kernels", "adversarial_bursts")
    for name in names:
        spec = get_scenario(name)
        print(f"{name}: {spec.description}")
    print()

    # Reduced stream scale keeps the demo to a few seconds; the specs (and
    # therefore the scenarios' character) are untouched.
    result = run_scenario_battery(names, size_scale=0.25)

    for outcome in result.outcomes:
        print(f"=== {outcome.scenario} "
              f"({outcome.size} objects, {outcome.labeled_count} labelled) ===")
        print(f"stream fingerprint: {outcome.fingerprint[:16]}…  seed: {outcome.spec['seed']}")
        budgets = [budget for budget, _ in outcome.curves["bayes_forest"]]
        header = "classifier      " + "".join(f"  b={budget:<4d}" for budget in budgets)
        print(header)
        for kind in sorted(outcome.curves.keys()):
            accs = "".join(f"  {acc:.3f} " for _, acc in outcome.curves[kind])
            print(f"{kind:<15s}{accs}  (prequential {outcome.prequential[kind]:.3f})")
        print()

    print(format_win_loss_table(result))


if __name__ == "__main__":
    main()
