"""Multi-tenant serving: one ModelRegistry, many tenants, one worker pool.

Demonstrates the v1 multi-tenant serving stack end to end:

1. train three tenants' forests and write per-tenant snapshots plus a
   tenant manifest (``repro.persist.save_tenant_manifest``),
2. stand a :class:`repro.serving.ModelRegistry` up from the manifest — an
   LRU cache of flat shared-memory snapshots (capacity 2 here, so three
   tenants *must* churn) with a shared global prior forest for tenants
   nobody has onboarded yet,
3. serve interleaved per-tenant traffic through the asyncio front-end and
   the versioned HTTP API (``/v1/tenants/{tenant}/classify_batch``,
   ``/v1/registry``), showing cold loads, LRU evictions and the cold-start
   prior fallback as they happen,
4. print the nested per-tenant ``stats_snapshot()`` the ``/stats`` route
   exposes.

Run with:  python examples/multi_tenant_serving.py
"""

import asyncio
import json
import tempfile
from pathlib import Path

from repro import AnytimeBayesClassifier, make_dataset, save_forest
from repro.persist import save_tenant_manifest
from repro.serving import AsyncServingClient, HttpFrontend, ModelRegistry

#: Per-tenant training seeds — three tenants with genuinely different models.
TENANT_SEEDS = {"acme": 3, "globex": 7, "initech": 11}


async def http_demo(host: str, port: int, features) -> None:
    """One raw /v1 exchange, printed so the versioned wire protocol is visible."""
    reader, writer = await asyncio.open_connection(host, port)
    body = json.dumps({"features": [list(features)]}).encode()
    writer.write(
        f"POST /v1/tenants/acme/classify_batch HTTP/1.1\r\nContent-Length: {len(body)}\r\n"
        "Connection: close\r\n\r\n".encode() + body
    )
    await writer.drain()
    status = (await reader.readline()).decode().strip()
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode().partition(":")
        headers[name.strip().lower()] = value.strip()
    payload = (await reader.readexactly(int(headers["content-length"]))).decode().strip()
    writer.close()
    await writer.wait_closed()
    print(f"  HTTP {status}")
    print(f"  response: {payload}")


async def main() -> None:
    # 1. One snapshot per tenant, plus a shared prior for unknown tenants.
    root = Path(tempfile.mkdtemp())
    tenants = {}
    for tenant, seed in TENANT_SEEDS.items():
        dataset = make_dataset("pendigits", size=700, random_state=seed)
        classifier = AnytimeBayesClassifier()
        classifier.fit(dataset.features[:600], dataset.labels[:600])
        snapshot = root / f"{tenant}.npz"
        save_forest(classifier, snapshot)
        tenants[tenant] = {"snapshot": snapshot}
    manifest = root / "tenants.json"
    save_tenant_manifest(manifest, tenants, prior_snapshot=root / "acme.npz")
    queries = make_dataset("pendigits", size=700, random_state=3).features[600:]
    print(f"manifest: {len(tenants)} tenants -> {manifest}")

    # 2. Registry capacity 2 < 3 tenants: serving all three forces LRU churn.
    registry = ModelRegistry.from_manifest(manifest, capacity=2)
    try:
        async with AsyncServingClient(registry=registry, linger_s=0.001) as client:
            # 3a. Interleaved tenant traffic through the front-end.
            print(f"\n{'tenant':>10s} {'prediction':>10s} {'resident afterwards'}")
            for tenant in ("acme", "globex", "initech", "acme"):
                predictions = await client.classify_batch(queries[:8], tenant=tenant)
                print(
                    f"{tenant:>10s} {predictions[0]:>10d} {registry.resident_tenants()}"
                )
            # An unknown tenant falls back to the shared prior forest.
            stranger = await client.classify_batch(queries[:4], tenant="newcomer")
            print(f"{'newcomer':>10s} {stranger[0]:>10d} (served by the global prior)")

            # 3b. The versioned HTTP surface on top.
            async with HttpFrontend(client) as http:
                host, port = http.address
                print(f"\nHTTP API on http://{host}:{port}")
                await http_demo(host, port, queries[0])

        # 4. The per-tenant stats the /stats and /v1/registry routes expose.
        stats = registry.stats_snapshot()
        print(f"\nregistry: {stats['resident']}/{stats['registered']} resident, "
              f"{stats['counters']['evictions']} evictions, "
              f"{stats['counters']['cold_start_requests']} prior-served requests")
        for tenant, entry in stats["tenants"].items():
            state = "resident" if entry["resident"] else "evicted"
            print(f"  {tenant:>10s} {state:>8s} loads={entry['loads']} "
                  f"requests={entry.get('requests', '-')}")
    finally:
        registry.close()


if __name__ == "__main__":
    asyncio.run(main())
