"""Varying-speed stream classification — the paper's health-monitoring motivation.

The paper motivates anytime classification with monitoring applications where
the data rate varies: the time available to classify one measurement is the
gap until the next one arrives.  This example replays the synthetic gender
(physiological data) stand-in as a Poisson stream, classifies every arriving
object with exactly the node budget the stream allows, and learns online from
the labels that become available afterwards (test-then-train).

It also demonstrates the multi-step classification idea of the paper's
health-net application [13]: a resource-restricted device uses only the upper
tree levels (a small node budget) and forwards the object to a server — which
spends a much larger budget — only when its own decision is not confident.

Run with:  python examples/health_monitoring_stream.py
"""

import numpy as np

from repro import AnytimeBayesClassifier, make_dataset
from repro.stream import DataStream, PoissonArrival, run_anytime_stream


def main() -> None:
    dataset = make_dataset("gender", size=700, random_state=3)
    rng = np.random.default_rng(3)
    train, stream_data = dataset.split(0.4, rng)

    classifier = AnytimeBayesClassifier(descent="glo")
    classifier.fit(train.features, train.labels)
    print(f"initial model trained on {train.size} objects; "
          f"{stream_data.size} objects arrive as a stream\n")

    # -- 1. Varying (Poisson) stream with online learning --------------------------------
    stream = DataStream(
        stream_data,
        arrival=PoissonArrival(rate=1.0),
        nodes_per_time_unit=8.0,
        max_budget=40,
        random_state=3,
    )
    # Micro-batched test-then-train: every chunk of 16 objects is classified
    # in one lockstep batch call before the revealed labels are learned.
    result = run_anytime_stream(
        classifier, stream, limit=150, online_learning=True, chunk_size=16
    )
    print("Poisson stream (test-then-train, deferred-label chunks of 16):")
    print(f"  processed objects : {len(result.steps)}")
    print(f"  mean node budget  : {result.mean_budget:.1f}")
    print(f"  mean nodes read   : {result.mean_nodes_read:.1f}")
    print(f"  stream accuracy   : {result.accuracy:.3f}")
    print("  accuracy by budget:")
    for budget, accuracy in list(result.accuracy_by_budget().items())[:8]:
        print(f"    budget {budget:3d} nodes -> accuracy {accuracy:.3f}")

    # -- 2. Multi-step classification (mobile device + server) ---------------------------
    device_budget, server_budget, confidence_threshold = 3, 60, 0.75
    forwarded = 0
    correct = 0
    evaluated = 0
    for item in DataStream(stream_data, arrival=PoissonArrival(rate=1.0), random_state=4).items(150):
        posterior = classifier.posterior_probabilities(item.features, node_budget=device_budget)
        best_label, best_probability = max(posterior.items(), key=lambda kv: kv[1])
        if best_probability < confidence_threshold:
            # Low confidence: the mobile device sends the object to the server,
            # which classifies with the full (larger) budget.
            best_label = classifier.predict(item.features, node_budget=server_budget)
            forwarded += 1
        correct += best_label == item.label
        evaluated += 1
    print("\nmulti-step classification (pre-classification on the device):")
    print(f"  device budget {device_budget} nodes, server budget {server_budget} nodes")
    print(f"  forwarded to server: {forwarded}/{evaluated} objects "
          f"({100.0 * forwarded / evaluated:.0f}% of the traffic)")
    print(f"  accuracy           : {correct / evaluated:.3f}")


if __name__ == "__main__":
    main()
