"""Anytime stream clustering — the paper's future-work extension (§4.2).

A ClusTree-style micro-clustering tree ingests an evolving data stream.  Three
properties from the paper's outlook are demonstrated:

* objects are inserted with an anytime hop budget; when the stream is too fast
  the object is "parked" in a buffer and taken along by a later insertion,
* exponential decay of the cluster features lets the model forget outdated
  concepts (concept drift),
* a density-based offline component turns the micro-clusters into
  arbitrary-shape macro-clusters.

Run with:  python examples/anytime_clustering.py
"""

import numpy as np

from repro.clustering import ClusTree, assign_to_macro_clusters, clustering_purity, density_cluster
from repro.data import make_blobs, make_drift_stream


def cluster_stationary_stream() -> None:
    centers = np.array([[0.0, 0.0], [12.0, 0.0], [6.0, 10.0]])
    dataset = make_blobs(n_classes=3, per_class=250, n_features=2, random_state=1, centers=centers)
    rng = np.random.default_rng(1)
    order = rng.permutation(dataset.size)

    print("=== stationary stream: three clusters, varying stream speed ===")
    for label, max_hops in (("slow stream (unlimited descent)", None), ("fast stream (1 hop)", 1)):
        tree = ClusTree(dimension=2, fanout=4, decay_rate=0.0)
        for t, index in enumerate(order):
            tree.insert(dataset.features[index], timestamp=float(t), max_hops=max_hops)
        micro = tree.micro_clusters(min_weight=1.0)
        macro = density_cluster(micro, epsilon=5.0, min_weight=20.0)
        assignments = assign_to_macro_clusters(dataset.features[order], macro)
        purity = clustering_purity(assignments, dataset.labels[order])
        print(f"  {label:32s}: {len(micro):3d} micro-clusters, {len(macro)} macro-clusters, "
              f"purity {purity:.3f}, parked insertions {tree.n_parked}")


def cluster_drifting_stream() -> None:
    print("\n=== drifting stream: exponential decay follows the concept ===")
    stream = make_drift_stream(size=1500, n_classes=2, n_features=2, drift_speed=0.03, random_state=2)
    for label, decay in (("no decay", 0.0), ("half-life 20 steps", 1.0 / 20.0)):
        tree = ClusTree(dimension=2, fanout=4, decay_rate=decay)
        for t in range(stream.size):
            tree.insert(stream.features[t], timestamp=float(t))
        micro = tree.micro_clusters(min_weight=0.5)
        centers = np.array([m.mean for m in micro])
        weights = np.array([m.weight for m in micro])
        model_center = (weights[:, None] * centers).sum(axis=0) / weights.sum()
        recent_center = stream.features[-150:].mean(axis=0)
        drift_error = float(np.linalg.norm(model_center - recent_center))
        print(f"  {label:22s}: {len(micro):3d} micro-clusters, total weight {weights.sum():7.1f}, "
              f"distance of model to current concept {drift_error:.2f}")


def main() -> None:
    cluster_stationary_stream()
    cluster_drifting_stream()


if __name__ == "__main__":
    main()
