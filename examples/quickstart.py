"""Quickstart: anytime Bayesian classification with the Bayes tree.

Trains one Bayes tree per class on the synthetic pendigits stand-in and shows
the defining property of the paper: the classifier can be interrupted after
any number of node reads and returns better answers the more time it gets.
Also demonstrates the vectorised batch query engine: many objects classified
together through one log-space evaluation per tree node.

Run with:  python examples/quickstart.py
"""

import time

import numpy as np

from repro import AnytimeBayesClassifier, make_dataset
from repro.evaluation import anytime_accuracy_curve


def main() -> None:
    # 1. Data: a synthetic stand-in for the UCI pendigits set (10 classes, 16 features).
    dataset = make_dataset("pendigits", size=900, random_state=7)
    rng = np.random.default_rng(7)
    train, test = dataset.split(0.8, rng)
    print(f"dataset: {dataset.name}  train={train.size}  test={test.size}  "
          f"classes={dataset.n_classes}  features={dataset.n_features}")

    # 2. Train the anytime classifier (one Bayes tree per class, iterative insertion).
    classifier = AnytimeBayesClassifier(descent="glo")
    classifier.fit(train.features, train.labels)
    total_nodes = sum(tree.node_count() for tree in classifier.trees.values())
    print(f"trained {classifier.n_classes} Bayes trees with {total_nodes} nodes in total")

    # 3. Classify a single object anytime: the prediction is available immediately
    #    and is refined with every additional node read.
    query, true_label = test.features[0], test.labels[0]
    result = classifier.classify_anytime(query, max_nodes=30)
    print(f"\nanytime classification of one object (true class {true_label}):")
    for nodes in (0, 1, 2, 5, 10, 20, 30):
        print(f"  after {nodes:3d} node reads -> predicted class {result.prediction_after(nodes)}")

    # 4. Batch classification: all test objects at once.  With a node budget
    #    the frontiers advance in lockstep and share vectorised node
    #    evaluations; with node_budget=None the fully-refined kernel models
    #    are evaluated for the whole batch in one call per class.
    start = time.perf_counter()
    budgeted = classifier.predict_batch(test.features, node_budget=20)
    budgeted_seconds = time.perf_counter() - start
    start = time.perf_counter()
    full = classifier.predict_batch(test.features)  # full refinement, flat path
    full_seconds = time.perf_counter() - start
    budgeted_accuracy = float(np.mean(np.array(budgeted) == test.labels))
    full_accuracy = float(np.mean(np.array(full) == test.labels))
    print(f"\nbatch classification of {test.size} objects:")
    print(f"  20-node budget:  accuracy {budgeted_accuracy:.3f}  ({budgeted_seconds:.3f}s)")
    print(f"  full refinement: accuracy {full_accuracy:.3f}  ({full_seconds:.4f}s)")

    # 5. The anytime accuracy curve over the whole test set (Figure 2 style).
    subset = rng.choice(test.size, size=min(40, test.size), replace=False)
    curve = anytime_accuracy_curve(
        classifier, test.features[subset], test.labels[subset], max_nodes=30
    )
    print("\naccuracy after n node reads:")
    for nodes in (0, 5, 10, 20, 30):
        print(f"  n={nodes:3d}  accuracy={curve[nodes]:.3f}")
    print(f"\nmean accuracy over the node axis: {curve.mean():.3f}")


if __name__ == "__main__":
    main()
