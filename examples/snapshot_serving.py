"""Snapshots + sharded serving: persist a forest, serve it, hot-swap it.

Demonstrates the production serving loop built in ISSUE 4:

1. train an adaptive (decaying) Bayes forest on a stream prefix,
2. ``save_forest`` it into a portable, pickle-free snapshot,
3. serve queries from a :class:`repro.serving.ServingEngine` — the per-class
   trees are sharded across worker processes, predictions are bit-identical
   to the in-process classifier,
4. keep training in the background, snapshot again and hot-swap the engine
   without dropping a request.

Run with:  python examples/snapshot_serving.py
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro import AnytimeBayesClassifier, BayesTreeConfig, load_forest, save_forest
from repro.serving import ServingEngine


def main() -> None:
    # 1. Train an adaptive forest on the first half of a stream.
    dataset_size, train_until, swap_until = 1200, 700, 900
    from repro import make_dataset

    dataset = make_dataset("pendigits", size=dataset_size, random_state=11)
    config = BayesTreeConfig(decay_rate=0.01, expiry_threshold=1e-4)
    classifier = AnytimeBayesClassifier(config=config)
    for i in range(train_until):
        classifier.partial_fit(dataset.features[i], dataset.labels[i], timestamp=float(i) * 0.1)
    print(f"trained {classifier.n_classes} class trees on {train_until} stream objects")

    # 2. Snapshot: a versioned .npz container, no pickle anywhere.
    workdir = Path(tempfile.mkdtemp())
    snapshot = workdir / "forest-v1.npz"
    save_forest(classifier, snapshot)
    print(f"snapshot written: {snapshot.name} ({snapshot.stat().st_size / 1024:.0f} KiB)")

    # Restoring is bit-identical: same predictions, same refinement traces.
    queries = dataset.features[train_until:]
    restored = load_forest(snapshot)
    assert restored.predict_batch(queries) == classifier.predict_batch(queries)
    print("restored forest agrees with the live one on every prediction")

    # 3. Serve the snapshot from sharded worker processes.
    with ServingEngine(snapshot, workers=2) as engine:
        start = time.perf_counter()
        served = engine.predict_batch(queries)
        seconds = time.perf_counter() - start
        assert served == restored.predict_batch(queries)
        mode = "sharded workers" if engine.is_multiprocess else "synchronous fallback"
        print(f"served {len(served)} queries in {seconds * 1e3:.1f} ms via {mode}")

        # Budgeted anytime requests ride the same engine (query-sharded).
        anytime = engine.predict_batch(queries[:32], node_budget=10)
        print(f"anytime (10-node budget) predictions for 32 queries: {anytime[:8]} ...")

        # 4. Background training + graceful hot swap.
        for i in range(train_until, swap_until):
            classifier.partial_fit(
                dataset.features[i], dataset.labels[i], timestamp=70.0 + float(i) * 0.1
            )
        snapshot_v2 = workdir / "forest-v2.npz"
        save_forest(classifier, snapshot_v2)
        engine.swap_snapshot(snapshot_v2)
        swapped = engine.predict_batch(queries)
        assert swapped == load_forest(snapshot_v2).predict_batch(queries)
        changed = int(np.sum(np.array(swapped) != np.array(served)))
        print(
            f"hot-swapped to {snapshot_v2.name}: {changed} of {len(served)} "
            f"predictions changed after the extra training"
        )
        print(f"engine stats: {engine.stats}")


if __name__ == "__main__":
    main()
