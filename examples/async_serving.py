"""Async serving front-end: HTTP shim, adaptive budgets, two arrival rates.

Demonstrates the ISSUE 5 request layer end to end:

1. train a forest, snapshot it and serve it from a
   :class:`repro.serving.ServingEngine`,
2. put the asyncio front-end on top — an :class:`AsyncServingClient`
   (event-loop micro-batcher with backpressure and deadlines) plus the
   stdlib :class:`HttpFrontend` speaking JSON over ``/classify``,
   ``/classify_batch``, ``/healthz``, ``/stats`` and ``/swap``,
3. drive it open loop at a *light* and a *bursty* arrival rate with
   ``node_budget=ADAPTIVE`` and print the node budget the arrival-rate
   estimator chose, with the accuracy and latency it bought — the paper's
   anytime curve realised as a serving policy,
4. make one raw HTTP request so the wire protocol is visible.

Run with:  python examples/async_serving.py
"""

import asyncio
import json
import tempfile
from pathlib import Path

from repro import AnytimeBayesClassifier, make_dataset, save_forest
from repro.evaluation import RequestTrace
from repro.serving import ADAPTIVE, AsyncServingClient, HttpFrontend, ServingEngine, drive_open_loop
from repro.stream import DataStream, PoissonArrival

#: Open-loop arrival rates (requests/second) driven against the front-end.
LIGHT_RPS = 40.0
BURST_RPS = 4000.0


async def http_demo(host: str, port: int, features) -> None:
    """One raw /classify exchange, printed so the JSON protocol is visible."""
    reader, writer = await asyncio.open_connection(host, port)
    body = json.dumps({"features": list(features), "node_budget": "adaptive"}).encode()
    writer.write(
        f"POST /classify HTTP/1.1\r\nContent-Length: {len(body)}\r\n"
        "Connection: close\r\n\r\n".encode() + body
    )
    await writer.drain()
    status = (await reader.readline()).decode().strip()
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode().partition(":")
        headers[name.strip().lower()] = value.strip()
    payload = (await reader.readexactly(int(headers["content-length"]))).decode().strip()
    writer.close()
    await writer.wait_closed()
    print(f"  HTTP {status}")
    print(f"  response: {payload}")


async def main() -> None:
    # 1. Train, snapshot, serve.
    dataset = make_dataset("pendigits", size=1000, random_state=11)
    train_until = 800
    classifier = AnytimeBayesClassifier()
    classifier.fit(dataset.features[:train_until], dataset.labels[:train_until])
    snapshot = Path(tempfile.mkdtemp()) / "forest.npz"
    save_forest(classifier, snapshot)
    tail = dataset.tail(train_until)
    print(f"snapshot: {classifier.n_classes} classes, serving the {len(tail.labels)}-object tail")

    with ServingEngine(snapshot, workers=0, linger_s=0.001) as engine:
        async with AsyncServingClient(engine, max_pending=512) as client:
            # 2. The HTTP shim — external load generators would hit this.
            async with HttpFrontend(client) as http:
                host, port = http.address
                print(f"\nHTTP shim listening on http://{host}:{port}")
                await http_demo(host, port, tail.features[0])

            # 3. Open-loop adaptive-budget replay at two arrival rates.
            print(f"\n{'load':>8s} {'req/s':>8s} {'mean budget':>12s} {'accuracy':>9s} {'p99 ms':>9s}")
            for label, speed in (("light", LIGHT_RPS), ("burst", BURST_RPS)):
                stream = DataStream(tail, arrival=PoissonArrival(rate=1.0), random_state=5)
                records = await drive_open_loop(
                    client, stream, speed=speed, limit=120, node_budget=ADAPTIVE
                )
                trace = RequestTrace.from_records(records)
                summary = trace.summary()
                print(
                    f"{label:>8s} {speed:8.0f} {summary['mean_node_budget']:12.2f} "
                    f"{summary['accuracy']:9.3f} {summary['latency_ms']['p99']:9.2f}"
                )
            print(
                "\nthe estimator converts idle time into refinement depth: light traffic"
                "\nearns deep node budgets, the burst degrades gracefully to shallow ones"
            )
            print(f"\nfront-end stats: {client.stats_snapshot()}")
        print(f"engine stats: {engine.stats_snapshot()}")


if __name__ == "__main__":
    asyncio.run(main())
