"""Bulk loading comparison — a small version of the paper's Figure 2.

Builds the per-class Bayes trees with the four strategies the paper evaluates
(iterative insertion, Hilbert packing, Goldberger mixture reduction, EM
top-down) and prints the anytime classification accuracy after each node read,
averaged over a 4-fold cross validation — exactly the protocol of §3.2.

Run with:  python examples/bulk_loading_comparison.py
"""

from repro.evaluation import ExperimentConfig, format_curve_table, run_bulkload_experiment


def main() -> None:
    config = ExperimentConfig(
        dataset="pendigits",
        size=800,                # scaled-down stand-in (see DESIGN.md)
        max_nodes=50,
        n_folds=4,
        strategies=("em_topdown", "hilbert", "goldberger", "iterative"),
        descents=("glo",),
        max_test_objects=20,
        random_state=0,
    )
    print("running 4-fold cross validation for four bulk loading strategies "
          f"on the {config.dataset} stand-in ({config.size} objects) ...\n")
    result = run_bulkload_experiment(config)

    print(format_curve_table(result, nodes=(0, 5, 10, 20, 30, 40, 50)))
    print()
    ranking = sorted(
        ((result.mean_accuracy(strategy), strategy) for strategy, _ in result.curves),
        reverse=True,
    )
    print("ranking by mean anytime accuracy (area under the curve):")
    for mean_accuracy, strategy in ranking:
        print(f"  {strategy:12s}  {mean_accuracy:.3f}")
    print("\nThe paper's finding: the EM top-down bulk load dominates, Hilbert packing")
    print("helps over iterative insertion, and the Goldberger reduction does not pay off early.")


if __name__ == "__main__":
    main()
